// Tests for the multi-threaded mini-SlimPipe runtime: worker threads as
// pipeline stages exchanging activation/gradient slices through channels
// must reproduce monolithic single-thread training exactly, across stage
// counts, slice counts and microbatch counts.

#include <gtest/gtest.h>

#include <thread>

#include "src/runtime/channel.hpp"
#include "src/runtime/pipeline_runtime.hpp"

namespace slim::rt {
namespace {

TEST(ChannelTest, FifoOrder) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  ch.send(3);
  EXPECT_EQ(ch.receive(), 1);
  EXPECT_EQ(ch.receive(), 2);
  EXPECT_EQ(ch.receive(), 3);
}

TEST(ChannelTest, SendFrontPreempts) {
  Channel<int> ch;
  ch.send(1);
  ch.send_front(0);
  EXPECT_EQ(ch.receive(), 0);
  EXPECT_EQ(ch.receive(), 1);
}

TEST(ChannelTest, TryReceiveEmpty) {
  Channel<int> ch;
  EXPECT_FALSE(ch.try_receive().has_value());
  ch.send(7);
  auto v = ch.try_receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(ChannelTest, CrossThreadBlockingReceive) {
  Channel<int> ch;
  std::thread producer([&] { ch.send(42); });
  EXPECT_EQ(ch.receive(), 42);
  producer.join();
}

std::vector<std::vector<std::int64_t>> random_batch(Rng& rng, int m, int seq,
                                                    std::int64_t vocab) {
  std::vector<std::vector<std::int64_t>> out(static_cast<std::size_t>(m));
  for (auto& sequence : out) {
    for (int i = 0; i < seq; ++i) {
      sequence.push_back(
          static_cast<std::int64_t>(rng.next_below(
              static_cast<std::uint64_t>(vocab))));
    }
  }
  return out;
}

struct RuntimeCase {
  int stages;
  int layers;
  int n_slices;
  int microbatches;
};

class PipelineRuntimeTest : public ::testing::TestWithParam<RuntimeCase> {};

TEST_P(PipelineRuntimeTest, MatchesMonolithicReference) {
  const RuntimeCase c = GetParam();
  Rng rng(100 + c.stages * 7 + c.n_slices);
  const num::BlockDims dims{32, 4, 2, 48};
  const std::int64_t vocab = 32;
  ThreadedPipeline pipe(dims, vocab, c.layers, c.stages, rng);

  Rng data_rng(200 + c.microbatches);
  const auto tokens = random_batch(data_rng, c.microbatches, 24, vocab);
  const auto targets = random_batch(data_rng, c.microbatches, 24, vocab);

  const auto ref = pipe.run_reference(tokens, targets);
  const auto par = pipe.run_iteration(tokens, targets, c.n_slices);

  EXPECT_NEAR(par.loss, ref.loss, 1e-5);
  EXPECT_LT(par.grads.max_abs_diff(ref.grads), 5e-5f)
      << "stages=" << c.stages << " n=" << c.n_slices;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineRuntimeTest,
    ::testing::Values(RuntimeCase{1, 2, 4, 1}, RuntimeCase{2, 2, 4, 1},
                      RuntimeCase{2, 3, 6, 2}, RuntimeCase{3, 3, 8, 2},
                      RuntimeCase{4, 4, 4, 2}, RuntimeCase{4, 5, 8, 3},
                      RuntimeCase{4, 4, 12, 1}, RuntimeCase{2, 4, 2, 4}));

TEST(PipelineRuntimeTest, DeterministicAcrossRuns) {
  Rng rng(11);
  const num::BlockDims dims{16, 2, 2, 24};
  ThreadedPipeline pipe(dims, 16, 3, 3, rng);
  Rng data_rng(12);
  const auto tokens = random_batch(data_rng, 2, 12, 16);
  const auto targets = random_batch(data_rng, 2, 12, 16);
  const auto a = pipe.run_iteration(tokens, targets, 4);
  const auto b = pipe.run_iteration(tokens, targets, 4);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
  EXPECT_LT(a.grads.max_abs_diff(b.grads), 1e-7f);
}

TEST(PipelineRuntimeTest, StatsShapeAndMemoryInvariant) {
  Rng rng(13);
  const num::BlockDims dims{16, 2, 2, 24};
  const int stages = 3, n = 6, m = 2;
  ThreadedPipeline pipe(dims, 16, 3, stages, rng);
  Rng data_rng(14);
  const auto tokens = random_batch(data_rng, m, 24, 16);
  const auto targets = random_batch(data_rng, m, 24, 16);
  const auto r = pipe.run_iteration(tokens, targets, n);
  ASSERT_EQ(r.stats.peak_live_slices.size(), static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    const int peak = r.stats.peak_live_slices[static_cast<std::size_t>(s)];
    EXPECT_GE(peak, 1);
    // No stage may accumulate more than one full microbatch of slices plus
    // the pipeline fill of later microbatches — with backward-priority
    // scheduling the peak stays well under the GPipe bound of m*n.
    EXPECT_LE(peak, m * n) << "stage " << s;
  }
  // Stage 0 exchanges the most messages (seeded forwards + gradients).
  EXPECT_EQ(r.stats.messages[0], 2 * m * n);
}

struct VocabCase {
  int stages;
  int n_slices;
  int microbatches;
};

class VocabParallelRuntimeTest : public ::testing::TestWithParam<VocabCase> {};

// The sharded head with two-phase scalar synchronization (paper 4.3) must
// reproduce the monolithic head exactly, concurrently.
TEST_P(VocabParallelRuntimeTest, ShardedHeadMatchesReference) {
  const VocabCase c = GetParam();
  Rng rng(700 + c.stages * 11 + c.n_slices);
  const num::BlockDims dims{32, 4, 2, 48};
  const std::int64_t vocab = 32;  // divisible by every stage count used
  ThreadedPipeline pipe(dims, vocab, c.stages + 1, c.stages, rng);

  Rng data_rng(701 + c.microbatches);
  const auto tokens = random_batch(data_rng, c.microbatches, 24, vocab);
  const auto targets = random_batch(data_rng, c.microbatches, 24, vocab);

  const auto ref = pipe.run_reference(tokens, targets);
  const auto sharded =
      pipe.run_iteration(tokens, targets, c.n_slices, /*vocab_parallel=*/true);
  EXPECT_NEAR(sharded.loss, ref.loss, 1e-5);
  EXPECT_LT(sharded.grads.max_abs_diff(ref.grads), 5e-5f)
      << "stages=" << c.stages << " n=" << c.n_slices;
}

INSTANTIATE_TEST_SUITE_P(Sweep, VocabParallelRuntimeTest,
                         ::testing::Values(VocabCase{1, 4, 1},
                                           VocabCase{2, 4, 2},
                                           VocabCase{2, 6, 1},
                                           VocabCase{4, 8, 2},
                                           VocabCase{4, 4, 3}));

TEST(PipelineRuntimeTest, UnevenStageSplit) {
  // 5 layers over 3 stages: 2/2/1.
  Rng rng(15);
  const num::BlockDims dims{16, 2, 1, 24};
  ThreadedPipeline pipe(dims, 16, 5, 3, rng);
  Rng data_rng(16);
  const auto tokens = random_batch(data_rng, 1, 12, 16);
  const auto targets = random_batch(data_rng, 1, 12, 16);
  const auto ref = pipe.run_reference(tokens, targets);
  const auto par = pipe.run_iteration(tokens, targets, 3);
  EXPECT_NEAR(par.loss, ref.loss, 1e-5);
  EXPECT_LT(par.grads.max_abs_diff(ref.grads), 5e-5f);
}

}  // namespace
}  // namespace slim::rt

// ---- interleaved (v > 1) runtime tests (appended) ----
namespace slim::rt {
namespace {

struct InterleavedCase {
  int stages;
  int chunks;   // v
  int layers;
  int n_slices;
  int microbatches;
  bool vocab_parallel;
};

class InterleavedRuntimeTest
    : public ::testing::TestWithParam<InterleavedCase> {};

// Figure 5's interleaved form, concurrently: thread r owns global stages
// r, p+r, 2p+r, ...; activations wrap around the ring between chunks. The
// gradients must still equal monolithic execution exactly.
TEST_P(InterleavedRuntimeTest, MatchesMonolithicReference) {
  const InterleavedCase c = GetParam();
  Rng rng(800 + c.stages * 17 + c.chunks * 5 + c.n_slices);
  const num::BlockDims dims{32, 4, 2, 48};
  const std::int64_t vocab = 32;
  ThreadedPipeline pipe(dims, vocab, c.layers, c.stages, rng, c.chunks);

  Rng data_rng(801 + c.microbatches);
  const auto tokens = random_batch(data_rng, c.microbatches, 24, vocab);
  const auto targets = random_batch(data_rng, c.microbatches, 24, vocab);

  const auto ref = pipe.run_reference(tokens, targets);
  const auto par =
      pipe.run_iteration(tokens, targets, c.n_slices, c.vocab_parallel);
  EXPECT_NEAR(par.loss, ref.loss, 1e-5);
  EXPECT_LT(par.grads.max_abs_diff(ref.grads), 5e-5f)
      << "p=" << c.stages << " v=" << c.chunks << " n=" << c.n_slices;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InterleavedRuntimeTest,
    ::testing::Values(InterleavedCase{2, 2, 4, 4, 1, false},
                      InterleavedCase{2, 2, 4, 4, 2, true},
                      InterleavedCase{2, 3, 6, 6, 2, false},
                      InterleavedCase{3, 2, 6, 6, 1, false},
                      InterleavedCase{4, 2, 8, 8, 2, true},
                      InterleavedCase{4, 2, 8, 4, 2, false},
                      InterleavedCase{2, 4, 9, 8, 1, false}));

}  // namespace
}  // namespace slim::rt
