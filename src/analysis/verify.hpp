#pragma once

// Analysis pass 3 — whole-schedule static verification on the tabular IR.
//
// Runs on the ScheduleIR table *before* any op graph is built, so a
// user-supplied or synthesized schedule is certified (or rejected with a
// named, located finding) without touching the simulator. Cross-device
// rules, complementing the per-device schedule lint (schedule_check) and
// the post-build graph lint (graph_check):
//
//   ir-structure        malformed table: duplicate/gapped per-device order,
//                       indices outside (p, v, n, m), stage inconsistent
//                       with the layout's (device, chunk) mapping
//   verify-causality    every declared recv has a unique matching send that
//                       happens-before it in channel FIFO order; declared
//                       endpoints agree with the stage boundary the pass
//                       crosses; no send is left unconsumed
//   verify-deadlock     the wait-for graph (per-device program order +
//                       matched send/recv pairs) is acyclic; a violation
//                       names a minimal witness cycle
//   verify-progress     every (microbatch, slice) unit is completable at
//                       every stage: exactly one forward and exactly one
//                       retiring backward (B, or the BI+BW split) — no
//                       orphaned forwards or backwards
//   verify-memory-cert  static replay of the in-flight activation/KV ledger
//                       producing a peak-bytes certificate per stage and
//                       per device; flags ledger dips below zero and, when
//                       a budget is given, certificate peaks above it
//
// The memory certificate books the same bytes sched::compile attaches to
// the graph (model::act_bytes_per_token_layer_no_kv + the KV term, split
// frees weighted by wgrad_kept_fraction), so it reconciles with the
// simulator's mem::replay_memory peaks to within the mem::reconcile_peaks
// tolerance — certificate_peaks() packages it for exactly that check.
// Offload PCIe traffic and logits are outside the certificate's scope (the
// certificate is an upper bound when offload is enabled).

#include <vector>

#include "src/analysis/findings.hpp"
#include "src/ir/schedule_ir.hpp"
#include "src/memory/reconcile.hpp"
#include "src/sched/schedule.hpp"

namespace slim::analysis {

struct VerifyOptions {
  /// Per-device budget on the certified activation+KV peak, in bytes.
  /// <= 0 disables the budget rule.
  double activation_budget_bytes = 0.0;
  std::size_t max_findings_per_rule = 8;
};

/// Certified peak of one global stage's activation+KV ledger.
struct StageCertificate {
  int stage = 0;
  int device = 0;          // device the stage lives on
  double unit_bytes = 0.0; // bytes one slice unit of this stage books
  double peak_bytes = 0.0; // certified ledger peak
};

struct MemoryCertificate {
  /// Category KV bytes are booked under (mem::kKvCache when the schedule
  /// retains KV, else folded into mem::kActivation) — mirrors the builder.
  int kv_category = 0;
  std::vector<StageCertificate> stages;        // indexed by global stage
  std::vector<double> device_activation_peak;  // kActivation ledger, bytes
  std::vector<double> device_kv_peak;          // kKvCache ledger, bytes
  std::vector<double> device_peak;             // combined act+KV, bytes

  /// Packages the certificate as the "measured" side of
  /// mem::reconcile_peaks against a replayed MemoryReport: one entry per
  /// device per booked category, normalized by the device's chunk-0 stage
  /// unit so both sides compare in slice units.
  std::vector<mem::MeasuredPeak> measured_peaks() const;
};

struct VerifyResult {
  std::vector<Finding> findings;
  MemoryCertificate certificate;

  bool ok() const { return !has_errors(findings); }
};

/// Verifies the table against the workload spec (byte model, layout). The
/// spec must describe the same schedule shape as the table header —
/// ir::apply_header produces one. All passes run even when earlier ones
/// find errors, except on tables too malformed to index.
VerifyResult verify_ir(const ir::ScheduleIR& table,
                       const sched::PipelineSpec& spec,
                       const VerifyOptions& options = {});

}  // namespace slim::analysis
