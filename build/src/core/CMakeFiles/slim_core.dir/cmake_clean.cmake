file(REMOVE_RECURSE
  "CMakeFiles/slim_core.dir/context_exchange.cpp.o"
  "CMakeFiles/slim_core.dir/context_exchange.cpp.o.d"
  "CMakeFiles/slim_core.dir/runner.cpp.o"
  "CMakeFiles/slim_core.dir/runner.cpp.o.d"
  "CMakeFiles/slim_core.dir/slimpipe.cpp.o"
  "CMakeFiles/slim_core.dir/slimpipe.cpp.o.d"
  "libslim_core.a"
  "libslim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
