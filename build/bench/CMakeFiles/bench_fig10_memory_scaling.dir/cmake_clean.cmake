file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_memory_scaling.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig10_memory_scaling.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig10_memory_scaling.dir/bench_fig10_memory_scaling.cpp.o"
  "CMakeFiles/bench_fig10_memory_scaling.dir/bench_fig10_memory_scaling.cpp.o.d"
  "bench_fig10_memory_scaling"
  "bench_fig10_memory_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_memory_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
