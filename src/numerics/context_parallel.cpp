#include "src/numerics/context_parallel.hpp"

#include <limits>

#include "src/util/logging.hpp"

namespace slim::num {

namespace {

std::int64_t tensor_bytes(const Tensor& t) { return t.size() * 4; }

std::int64_t chunk_bytes(const KvChunk& chunk) {
  return tensor_bytes(chunk.k) + tensor_bytes(chunk.v);
}

std::int64_t partial_bytes(const Tensor& q, const AttnPartial& part) {
  // q + o + (m, l) scalars per row.
  return tensor_bytes(q) + tensor_bytes(part.out) +
         static_cast<std::int64_t>(part.m.size() + part.l.size()) * 4;
}

AttnPartial empty_partial(const Tensor& q) {
  AttnPartial part;
  // Must stay zero-initialized: attn_merge weights this buffer by l (= 0
  // here), and 0 * garbage would poison the merge if garbage held NaN/Inf.
  part.out = Tensor(q.rows(), q.cols());
  part.m.assign(static_cast<std::size_t>(q.rows()),
                -std::numeric_limits<float>::infinity());
  part.l.assign(static_cast<std::size_t>(q.rows()), 0.0f);
  return part;
}

}  // namespace

CpAttnResult cp_ring_kv(const std::vector<Tensor>& queries,
                        const std::vector<std::int64_t>& q_offsets,
                        const std::vector<CpRankCache>& caches, float scale) {
  const std::size_t c = queries.size();
  SLIM_CHECK(c >= 1 && q_offsets.size() == c && caches.size() == c,
             "rank count mismatch");
  CpAttnResult result;
  result.outputs.reserve(c);
  for (std::size_t j = 0; j < c; ++j) {
    result.outputs.push_back(empty_partial(queries[j]));
  }

  // Step 0 uses the resident KV; steps 1..c-1 rotate the blocks one hop.
  for (std::size_t step = 0; step < c; ++step) {
    for (std::size_t rank = 0; rank < c; ++rank) {
      const std::size_t source = (rank + step) % c;
      for (const KvChunk& chunk : caches[source].chunks) {
        const AttnPartial part =
            attn_partial(queries[rank], chunk.k, chunk.v, q_offsets[rank],
                         chunk.pos, scale);
        result.outputs[rank] = attn_merge(result.outputs[rank], part);
      }
      if (step > 0) {
        // The block travelled one hop this step to reach `rank`.
        for (const KvChunk& chunk : caches[source].chunks) {
          result.bytes_communicated += chunk_bytes(chunk);
        }
      }
    }
  }
  return result;
}

CpAttnResult cp_commutated(const std::vector<Tensor>& queries,
                           const std::vector<std::int64_t>& q_offsets,
                           const std::vector<CpRankCache>& caches,
                           float scale) {
  const std::size_t c = queries.size();
  SLIM_CHECK(c >= 1 && q_offsets.size() == c && caches.size() == c,
             "rank count mismatch");
  CpAttnResult result;
  result.outputs.reserve(c);
  for (std::size_t j = 0; j < c; ++j) {
    result.outputs.push_back(empty_partial(queries[j]));
  }

  // Each (q, o, m, l) packet visits all ranks; KV never moves.
  for (std::size_t rank = 0; rank < c; ++rank) {
    AttnPartial acc = empty_partial(queries[rank]);
    for (std::size_t step = 0; step < c; ++step) {
      const std::size_t host = (rank + step) % c;
      for (const KvChunk& chunk : caches[host].chunks) {
        const AttnPartial part =
            attn_partial(queries[rank], chunk.k, chunk.v, q_offsets[rank],
                         chunk.pos, scale);
        acc = attn_merge(acc, part);
      }
      if (step > 0) {
        // The packet hopped to `host` carrying q, o and the normalizer.
        result.bytes_communicated += partial_bytes(queries[rank], acc);
      }
    }
    // One final hop home (ring closure).
    if (c > 1) {
      result.bytes_communicated += partial_bytes(queries[rank], acc);
    }
    result.outputs[rank] = std::move(acc);
  }
  return result;
}

std::vector<AttnPartial> cp_reference(
    const std::vector<Tensor>& queries,
    const std::vector<std::int64_t>& q_offsets,
    const std::vector<CpRankCache>& caches, float scale) {
  std::vector<AttnPartial> outputs;
  for (std::size_t rank = 0; rank < queries.size(); ++rank) {
    AttnPartial acc = empty_partial(queries[rank]);
    for (const CpRankCache& cache : caches) {
      for (const KvChunk& chunk : cache.chunks) {
        const AttnPartial part =
            attn_partial(queries[rank], chunk.k, chunk.v, q_offsets[rank],
                         chunk.pos, scale);
        acc = attn_merge(acc, part);
      }
    }
    outputs.push_back(std::move(acc));
  }
  return outputs;
}

}  // namespace slim::num
