#pragma once

// Accelerator description and the op-duration model.
//
// Durations follow a smoothed roofline: an op with F flops and M bytes of
// HBM traffic takes
//     t = max(F / (peak * eff_class), M / hbm_bw) + overhead
// where eff_class is the achievable fraction of peak for the op class
// (dense GEMM reaches a higher fraction than attention). The roofline's
// memory leg is what makes very short slices inefficient (paper §6.3 /
// Figure 11: arithmetic intensity drops when slices shrink).

#include <cstdint>
#include <string>

namespace slim::model {

enum class OpCategory : std::uint8_t {
  Gemm,           // dense projections / FFN / MoE expert GEMMs
  Attention,      // SDPA forward
  AttentionBwd,   // SDPA backward
  VocabGemm,      // output-layer projection + loss
  Elementwise,    // norms, activations, residuals (memory bound)
};

struct GpuSpec {
  std::string name = "Hopper-80GB";
  double memory_bytes = 80.0 * (1ull << 30);
  double peak_flops = 989e12;       // dense bf16, no sparsity
  double hbm_bandwidth = 3.35e12;   // bytes/s

  // Achievable fraction of peak per op class.
  double eff_gemm = 0.65;
  double eff_attention = 0.55;
  double eff_attention_bwd = 0.50;
  double eff_vocab = 0.60;

  /// Fixed per-pass overhead (kernel launches, stream sync) in seconds,
  /// charged once per layer executed in a pass.
  double per_layer_overhead = 8e-6;
  /// Fixed per-pass overhead (pipeline bookkeeping, comm setup).
  double per_pass_overhead = 15e-6;

  /// Small-GEMM occupancy model: kernels with few rows (short sequence
  /// slices) cannot fill the SMs; achievable efficiency scales by
  /// rows / (rows + gemm_rows_half). This is the "arithmetic intensity"
  /// penalty the paper's §6.3 observes for fine slicing.
  double gemm_rows_half = 384.0;

  /// Occupancy derate for a kernel processing `rows` sequence positions.
  double rows_derate(double rows) const {
    if (rows <= 0.0) return 1.0;
    return rows / (rows + gemm_rows_half);
  }

  double efficiency(OpCategory category) const;

  /// Roofline duration for one op (no overhead term).
  double op_time(double flops, double hbm_bytes, OpCategory category) const;

  /// Host-device (PCIe) bandwidth for activation offloading, bytes/s.
  double pcie_bandwidth = 55e9;
};

/// The paper's testbed accelerator.
GpuSpec hopper80();

}  // namespace slim::model
