# Empty dependencies file for bench_fig13_scheme_mfu.
# This may be replaced when dependencies are built.
