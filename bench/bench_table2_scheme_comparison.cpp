// Table 2: comparison between pipeline schemes — activation memory (as a
// fraction of M_a) and bubble fraction. The closed-form entries are printed
// next to byte-exact simulator measurements (vocabulary shrunk so logits do
// not contaminate the activation comparison).

#include "bench_common.hpp"

using namespace slim;

namespace {

constexpr int kP = 4, kM = 8, kN = 16, kV = 2;
constexpr std::int64_t kSeq = 64 * 1024;

sched::PipelineSpec spec_for(core::Scheme scheme) {
  auto spec = slimbench::base_spec(model::llama13b(), 8, kP, kSeq, kM);
  spec.cfg.vocab = 4000;  // isolate activations from logits
  switch (scheme) {
    case core::Scheme::TeraPipe:
      spec.n = kN;
      break;
    case core::Scheme::Interleaved1F1B:
      spec.v = kV;
      break;
    case core::Scheme::SlimPipe:
      spec.n = kN;
      spec.v = kV;
      spec.vocab_parallel = true;
      spec.context_exchange = true;
      break;
    default:
      break;
  }
  return spec;
}

double measured_activation_fraction(core::Scheme scheme) {
  auto spec = spec_for(scheme);
  const auto r = core::run_scheme(scheme, spec);
  const bool retain =
      scheme == core::Scheme::SlimPipe || scheme == core::Scheme::TeraPipe;
  const double per_token = model::act_bytes_per_token_layer(
      spec.cfg, spec.shard,
      (scheme == core::Scheme::ZBV || scheme == core::Scheme::VHalf)
          ? model::CheckpointPolicy::None
          : spec.policy,
      retain);
  const double ma = per_token * static_cast<double>(kSeq) *
                    static_cast<double>(spec.cfg.layers);
  const double states = model::model_state_bytes(
      spec.cfg, spec.shard,
      static_cast<double>(spec.cfg.layers) / kP,
      scheme == core::Scheme::SlimPipe ? 1.0 / kP : 1.0, 1);
  return (r.first_device_memory - states) / ma;
}

double table2_fraction(core::Scheme scheme) {
  switch (scheme) {
    case core::Scheme::GPipe:
    case core::Scheme::TeraPipe:
      return core::gpipe_activation_fraction(kM, kP);
    case core::Scheme::OneF1B:
      return core::onef1b_activation_fraction(kM, kP);
    case core::Scheme::Interleaved1F1B:
      return core::interleaved_activation_fraction(kP, kV);
    case core::Scheme::ZBV:
      return 1.0;
    case core::Scheme::VHalf:
      return core::vhalf_activation_fraction(kP);
    case core::Scheme::VMin:
      return core::vmin_activation_fraction(kP);
    case core::Scheme::SlimPipe:
      return core::slimpipe_activation_fraction(kP, kN, kV);
  }
  return 0.0;
}

}  // namespace

static void BM_Table2(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto scheme : core::all_schemes()) {
      benchmark::DoNotOptimize(core::run_scheme(scheme, spec_for(scheme)));
    }
  }
}
BENCHMARK(BM_Table2)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("table2_scheme_comparison");
  slimbench::print_banner(
      "Table 2 — activation memory and bubble fraction per scheme",
      "Llama 13B (tiny vocab), t=8, p=4, m=8, n=16, v=2, 64K context",
      "activation (xM_a): GPipe/TeraPipe m/p=2.0, 1F1B 1.0, interleaved "
      "1+(p-1)/vp=1.375, ZB-V 1.0, V-Half 0.75, SlimPipe 1/p+2(p-1)/nvp=0.30; "
      "bubbles: TeraPipe/interleaved/ZB-V small, SlimPipe smallest");

  Table table({"scheme", "act (Table 2)", "act (measured)", "bubble"});
  for (const auto scheme : core::all_schemes()) {
    const auto r = core::run_scheme(scheme, spec_for(scheme));
    table.add_row({core::scheme_name(scheme), fmt(table2_fraction(scheme), 3),
                   fmt(measured_activation_fraction(scheme), 3),
                   format_percent(r.bubble_fraction)});
  }
  slimbench::print_table("scheme comparison", table);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
