#pragma once

// Self-describing bench/CLI report files.
//
// Every bench binary (and slimpipe_sim --json) writes one
// results/bench_<name>.json with this shape:
//
//   {"schema": "slimpipe-bench-report", "version": 1,
//    "name": "...", "artifact": "...", "setup": "...", "expectation": "...",
//    "series": [{"title": "...", "columns": [...], "rows": [[...], ...]}],
//    "runs":   [{"label": "...", "iteration_time": ..., "bubble_fraction":
//                ..., "mfu": ..., "peak_memory": ..., "oom": false,
//                "metrics": {<RunMetrics>}}]}
//
// "series" captures the printed tables verbatim (pre-formatted cells) so a
// report round-trips what the terminal showed; "runs" carries the machine
// shape (one RunMetrics per labelled configuration) for diffing.

#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/util/table.hpp"

namespace slim::obs {

inline constexpr const char* kReportSchema = "slimpipe-bench-report";
inline constexpr int kReportVersion = 1;

struct SeriesTable {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

struct RunRecord {
  std::string label;
  double iteration_time = 0.0;
  double bubble_fraction = 0.0;
  double mfu = 0.0;
  double peak_memory = 0.0;
  bool oom = false;
  RunMetrics metrics;
};

struct BenchReport {
  std::string name;
  std::string artifact;
  std::string setup;
  std::string expectation;
  std::vector<SeriesTable> series;
  std::vector<RunRecord> runs;

  void add_series(const std::string& title, const Table& table);
};

JsonValue report_to_json(const BenchReport& report);
bool report_from_json(const JsonValue& value, BenchReport* out);

/// Loads and parses a report file; returns false and fills `error` on I/O or
/// parse failure (schema issues are reported via validate_report instead).
bool load_report(const std::string& path, BenchReport* out,
                 std::string* error);

/// Serializes and writes the report, creating parent directories. Returns
/// false on I/O failure.
bool write_report(const BenchReport& report, const std::string& path);

/// Structural schema check on a parsed document: required keys, types,
/// series row widths, run metrics shape. Empty result = valid.
std::vector<std::string> validate_report(const JsonValue& value);

/// Renders the report as aligned tables (series verbatim, then one summary
/// table over runs).
std::string render_report(const BenchReport& report);

/// Renders a cell-wise comparison of two reports: matching series (by title
/// and row index) show "a -> b" for changed cells with a relative delta for
/// numeric ones; run summaries are diffed metric-by-metric.
std::string render_diff(const BenchReport& a, const BenchReport& b);

}  // namespace slim::obs
