#pragma once

// The staged per-microbatch gradient-commit protocol, shared by the
// threaded and multi-process pipeline backends.
//
// Every (stage, microbatch) pair stages its gradient contributions into a
// private StageCommit while the microbatch is in flight; the slot becomes
// `complete` exactly when the microbatch retires on that stage (all of its
// backward slices finished). A microbatch's work enters the iteration
// result only once it retired on EVERY stage — a crash mid-iteration
// therefore discards precisely the partial work, and replaying the
// uncommitted microbatches on respawned workers reproduces the fault-free
// gradients bit for bit (per-microbatch contributions are deterministic
// and the merge runs in a fixed stage-major order on one thread).
//
// In the threaded backend the slots live in shared memory and workers
// write them directly; in the multi-process backend each worker stages
// locally and ships the finished slot to the supervisor in a Commit frame
// at the retirement point — at-most-once semantics fall out of the frame
// being sent only at retirement and the supervisor overwriting the slot
// wholesale (a torn frame from a killed worker is detected by its CRC and
// discarded, leaving the slot incomplete, i.e. scheduled for replay).

#include <cstdint>
#include <vector>

#include "src/runtime/pipeline_model.hpp"

namespace slim::rt {

/// Staged contribution of one (stage, microbatch) pair. Field presence
/// follows the stage's role: embed_in only on stage 0, final_norm only on
/// the head stage, head_shard on the head stage (or on every stage under
/// vocabulary parallelism).
struct StageCommit {
  std::vector<num::LayerGrads> layers;  // indexed like owned_layers[stage]
  num::Tensor embed_in;                 // input-side embedding grads
  num::Tensor head_shard;               // output-head shard grads
  num::Tensor final_norm;               // final-norm grads
  double loss = 0.0;
  bool complete = false;
};

/// Freshly zeroed staging buffers for one (stage, microbatch) slot — used
/// by the ledger and by multi-process stage workers staging locally.
StageCommit make_stage_commit(const PipelineModel& model, int stage,
                              bool vocab_parallel);

/// All (stage, microbatch) commit slots of one iteration plus the
/// deterministic merge. Slot writers are exclusive per (stage, mb):
/// threaded workers write their stage's slots in place; the multi-process
/// supervisor deserializes received Commit frames into them. The merge and
/// the committed/uncommitted queries run single-threaded after workers
/// quiesced (join / waitpid is the synchronization point).
class CommitLedger {
 public:
  CommitLedger() = default;
  CommitLedger(const PipelineModel& model, int microbatches,
               bool vocab_parallel);

  /// (Re)initializes the slot to zeroed, incomplete staging buffers —
  /// called for every participating (stage, mb) at the start of an attempt
  /// (including the replay attempt, which discards prior partial work).
  void prepare(int stage, int mb);

  StageCommit& slot(int stage, int mb);
  const StageCommit& slot(int stage, int mb) const;

  /// True when the microbatch retired on every stage.
  bool fully_committed(int mb) const;

  /// Ascending microbatch ids not yet fully committed.
  std::vector<int> uncommitted() const;

  /// Merges one fully retired microbatch into the iteration accumulators
  /// in the fixed stage-major order both backends share: for each stage
  /// ascending — owned layer grads, embed_in, head_shard (into the
  /// caller's per-stage shard accumulator), final_norm, loss.
  void merge_microbatch(int mb, num::TinyModel::Grads& grads,
                        std::vector<num::Tensor>& head_shard_grad,
                        double& loss_sum) const;

  const std::vector<std::vector<int>>& owned() const { return owned_; }
  int stages() const { return stages_; }
  int microbatches() const { return microbatches_; }
  std::int64_t shard_width() const { return shard_width_; }

 private:
  const PipelineModel* model_ = nullptr;
  int stages_ = 0;
  int microbatches_ = 0;
  bool vocab_parallel_ = false;
  std::int64_t shard_width_ = 0;
  std::vector<std::vector<int>> owned_;
  std::vector<StageCommit> slots_;  // stage-major: [stage * m + mb]
};

}  // namespace slim::rt
