# Empty compiler generated dependencies file for slim_sim.
# This may be replaced when dependencies are built.
