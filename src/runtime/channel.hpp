#pragma once

// Blocking message channel between pipeline-stage threads — the
// shared-memory analogue of the point-to-point sends a distributed SlimPipe
// implementation posts between pipeline ranks.
//
// Channels support poisoning (close()): a closed channel keeps draining the
// messages already queued, then reports Closed instead of blocking. This is
// the shutdown protocol's backbone — when a stage fails, closing every
// channel unblocks all peers waiting in receive, so a crash surfaces as a
// structured error instead of a deadlocked join.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "src/util/logging.hpp"

namespace slim::rt {

/// Outcome of a status-reporting receive.
enum class RecvStatus : int {
  Ok,       // a message was delivered
  Timeout,  // the wait expired with the queue empty (starvation probe)
  Closed,   // channel poisoned and drained; no message will ever arrive
};

template <typename T>
class Channel {
 public:
  /// Appends a message (FIFO order, like a NCCL P2P stream). Sends to a
  /// closed channel are dropped: the receivers are unwinding and the
  /// payload can no longer be consumed.
  void send(T message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      queue_.push_back(std::move(message));
      peak_depth_ = std::max(peak_depth_, queue_.size());
    }
    cv_.notify_one();
  }

  /// Prepends a message: used for stage-local continuations (LIFO backward
  /// triggers) that must run before newly arriving work.
  void send_front(T message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      queue_.push_front(std::move(message));
      peak_depth_ = std::max(peak_depth_, queue_.size());
    }
    cv_.notify_one();
  }

  /// Poisons the channel: queued messages still drain, further sends are
  /// dropped, and receives return Closed once the queue is empty.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Blocks until a message is available. Throws (SLIM_CHECK) if the
  /// channel is closed and drained — callers that participate in the
  /// shutdown protocol use receive_status_for instead.
  T receive() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    SLIM_CHECK(!queue_.empty(), "receive on a closed, drained channel");
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Blocks up to `timeout`; returns nullopt on expiry *or* poisoning
  /// (legacy probe interface; receive_status_for distinguishes the two).
  template <typename Rep, typename Period>
  std::optional<T> receive_for(std::chrono::duration<Rep, Period> timeout) {
    T message;
    return receive_status_for(timeout, message) == RecvStatus::Ok
               ? std::optional<T>(std::move(message))
               : std::nullopt;
  }

  /// Blocks up to `timeout`; fills `out` and returns Ok, or reports why no
  /// message arrived (Timeout = starvation probe expired, Closed = channel
  /// poisoned and drained).
  template <typename Rep, typename Period>
  RecvStatus receive_status_for(std::chrono::duration<Rep, Period> timeout,
                                T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout,
                      [&] { return !queue_.empty() || closed_; })) {
      return RecvStatus::Timeout;
    }
    if (queue_.empty()) return RecvStatus::Closed;
    out = std::move(queue_.front());
    queue_.pop_front();
    return RecvStatus::Ok;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// High-water mark of the queue depth over the channel's lifetime (an
  /// observability probe: how far ahead the producer ran).
  std::size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_depth_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  std::size_t peak_depth_ = 0;
  bool closed_ = false;
};

}  // namespace slim::rt
