#pragma once

// Pipeline-parallelism-aware activation offloading (paper §6.5, Table 4;
// technique from Yuan et al., USENIX ATC'24).
//
// A fraction `ratio` of each slice's stored activations is copied to host
// memory right after the forward pass and prefetched back before the
// corresponding backward pass. The copies ride PCIe and overlap with
// compute; only the part that exceeds the compute window is exposed as a
// slowdown.

#include <algorithm>

namespace slim::mem {

struct OffloadModel {
  double ratio = 0.0;           // fraction of activation bytes moved to host
  double pcie_bandwidth = 55e9; // bytes/s per device

  bool enabled() const { return ratio > 0.0; }

  /// Device-resident activation bytes after offloading.
  double resident_bytes(double activation_bytes) const {
    return activation_bytes * (1.0 - ratio);
  }

  /// Host bytes consumed.
  double host_bytes(double activation_bytes) const {
    return activation_bytes * ratio;
  }

  /// Exposed (non-overlappable) time added to a pass of duration
  /// `compute_window` that must move `activation_bytes * ratio` over PCIe.
  double exposed_time(double activation_bytes, double compute_window) const {
    if (!enabled()) return 0.0;
    const double copy = host_bytes(activation_bytes) / pcie_bandwidth;
    return std::max(0.0, copy - compute_window);
  }
};

}  // namespace slim::mem
