#pragma once

// Logical memory categories shared by BOTH substrates: the analytical
// tracker (src/memory/tracker.hpp) books simulated MemDelta records against
// them, and the numerics arenas (src/numerics/arena.hpp) account real
// allocations against the same indices — which is what makes the
// measured-vs-analytical reconciliation (src/memory/reconcile.hpp) a
// like-for-like comparison. Header-only on purpose: the numerics library
// links neither the simulator nor the tracker.

namespace slim::mem {

enum Category : int {
  kParams = 0,
  kGrads,
  kOptimizer,
  kActivation,
  kKvCache,
  kLogits,
  kCommBuffer,
  kWorkspace,  // transient kernel scratch (measured substrate only)
  kNumCategories,
};

constexpr const char* category_name(int category) {
  switch (category) {
    case kParams: return "params";
    case kGrads: return "grads";
    case kOptimizer: return "optimizer";
    case kActivation: return "activation";
    case kKvCache: return "kv_cache";
    case kLogits: return "logits";
    case kCommBuffer: return "comm_buffer";
    case kWorkspace: return "workspace";
    default: return "unknown";
  }
}

}  // namespace slim::mem
