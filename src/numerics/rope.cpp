#include "src/numerics/rope.hpp"

#include <cmath>

namespace slim::num {

namespace {
void rotate(Tensor& x, std::int64_t pos_offset, float sign) {
  SLIM_CHECK(x.cols() % 2 == 0, "RoPE requires an even feature dimension");
  const std::int64_t d = x.cols();
  for (std::int64_t r = 0; r < x.rows(); ++r) {
    const float pos = static_cast<float>(pos_offset + r);
    for (std::int64_t i = 0; i < d / 2; ++i) {
      const float theta =
          pos * std::pow(kRopeBase, -2.0f * static_cast<float>(i) /
                                        static_cast<float>(d));
      const float c = std::cos(theta), s = sign * std::sin(theta);
      const float x0 = x.at(r, 2 * i), x1 = x.at(r, 2 * i + 1);
      x.at(r, 2 * i) = x0 * c - x1 * s;
      x.at(r, 2 * i + 1) = x0 * s + x1 * c;
    }
  }
}
}  // namespace

void rope_apply(Tensor& x, std::int64_t pos_offset) {
  rotate(x, pos_offset, 1.0f);
}

void rope_apply_bwd(Tensor& dx, std::int64_t pos_offset) {
  rotate(dx, pos_offset, -1.0f);
}

}  // namespace slim::num
