#pragma once

// ASCII table / CSV rendering used by the benchmark harnesses to print the
// paper's tables and figure series.

#include <cstdint>
#include <string>
#include <vector>

namespace slim {

/// Column-aligned text table. Rows are vectors of pre-formatted cells.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator line at the current position.
  void add_separator();

  /// Renders the table with column alignment.
  std::string to_string() const;

  /// Renders rows as CSV (separators omitted).
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }

  /// Column headers, as passed to the constructor.
  const std::vector<std::string>& header() const { return header_; }

  /// Data rows in order, separator lines omitted (pre-formatted cells).
  /// Used by the bench reporter to serialize printed tables into JSON.
  std::vector<std::vector<std::string>> data_rows() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double with `digits` decimals.
std::string fmt(double value, int digits = 2);
std::string fmt(std::int64_t value);

}  // namespace slim
