// Tabular schedule IR (src/ir) and the whole-schedule verification engine
// (src/analysis/verify).
//
// Strategy mirrors test_analysis: a clean differential sweep over every
// scheme proving lowering -> export -> import -> verify -> simulate is
// finding-free and identical to the direct path, one deliberately corrupted
// fixture per verify rule asserting the exact rule_id, a golden text file
// pinning the on-disk format, and a reconciliation of the static memory
// certificate against the simulator's replayed footprint.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/analysis/findings.hpp"
#include "src/analysis/verify.hpp"
#include "src/core/context_exchange.hpp"
#include "src/core/runner.hpp"
#include "src/ir/schedule_ir.hpp"
#include "src/memory/reconcile.hpp"
#include "src/sched/builder.hpp"
#include "src/sched/schedule.hpp"

namespace {

using namespace slim;
using analysis::has_rule;
using ir::kNoEndpoint;
using ir::Row;
using ir::ScheduleIR;
using sched::Pass;
using sched::PassType;

sched::PipelineSpec base_spec(int p, int n, int m) {
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.p = p;
  spec.v = 1;
  spec.n = n;
  spec.m = m;
  spec.seq = 131072;
  spec.offload.pcie_bandwidth = spec.gpu.pcie_bandwidth;
  return spec;
}

/// The acceptance grid: every scheme over p/n/m/v sweep points (TeraPipe's
/// n rounded up to a multiple of p, matching slimpipe_lint --sweep).
struct GridPoint {
  core::Scheme scheme;
  sched::PipelineSpec spec;
  std::string label;
};

std::vector<GridPoint> sweep_grid() {
  std::vector<GridPoint> points;
  for (const core::Scheme scheme : core::all_schemes()) {
    for (const int p : {2, 4}) {
      for (int n : {1, 4}) {
        for (const int m : {p, 2 * p}) {
          for (const int v : {1, 2}) {
            if (scheme == core::Scheme::TeraPipe && n > 1 && n % p != 0) {
              n = ((n + p - 1) / p) * p;
            }
            sched::PipelineSpec spec = base_spec(p, n, m);
            spec.v = v;
            spec.vocab_parallel = scheme == core::Scheme::SlimPipe;
            std::ostringstream label;
            label << core::scheme_name(scheme) << " p=" << p << " n=" << n
                  << " m=" << m << " v=" << v;
            points.push_back({scheme, std::move(spec), label.str()});
          }
        }
      }
    }
  }
  return points;
}

ScheduleIR lower_plan(const core::SchedulePlan& plan, core::Scheme scheme) {
  return ir::lower(plan.spec, plan.programs, core::scheme_name(scheme));
}

core::SchedulePlan onef1b_plan(int p, int m) {
  return core::plan_scheme(core::Scheme::OneF1B, base_spec(p, 1, m));
}

/// Renumbers each device's rows to contiguous order after a surgical edit,
/// keeping the structural rule out of fixtures that target another rule.
void renumber(ScheduleIR& table) {
  table.canonicalize();
  int device = -1, order = 0;
  for (Row& row : table.rows) {
    if (row.device != device) {
      device = row.device;
      order = 0;
    }
    row.order = order++;
  }
}

// ---------------------------------------------------------------------------
// Round trip: lowering every scheme exports to text that re-imports
// byte-identically and verifies clean.

TEST(IrRoundTrip, ExportImportByteIdenticalAcrossSweep) {
  for (const GridPoint& point : sweep_grid()) {
    SCOPED_TRACE(point.label);
    const core::SchedulePlan plan =
        core::plan_scheme(point.scheme, point.spec);
    const ScheduleIR table = lower_plan(plan, point.scheme);

    const std::string text = ir::export_text(table);
    const ScheduleIR imported = ir::import_text(text);
    EXPECT_EQ(imported, table);
    EXPECT_EQ(ir::export_text(imported), text);  // byte-identical

    // The header reproduces the normalized spec; re-lowering the
    // reconstructed programs under it reproduces the table exactly.
    const sched::PipelineSpec applied =
        ir::apply_header(imported, point.spec);
    EXPECT_EQ(applied.validate(), "");
    EXPECT_EQ(applied.max_inflight_units, plan.max_inflight_units);
    const ScheduleIR relowered =
        ir::lower(applied, ir::to_programs(imported), table.scheme);
    EXPECT_EQ(relowered, table);

    const analysis::VerifyResult verdict =
        analysis::verify_ir(imported, applied);
    EXPECT_TRUE(verdict.ok()) << analysis::render(verdict.findings);
  }
}

// ---------------------------------------------------------------------------
// Differential: simulating the imported table is identical to the direct
// scheme path — same times, same memory, device by device.

TEST(IrDifferential, ImportedScheduleSimulatesIdentically) {
  for (const GridPoint& point : sweep_grid()) {
    SCOPED_TRACE(point.label);
    const core::SchedulePlan plan =
        core::plan_scheme(point.scheme, point.spec);

    std::unique_ptr<core::ExchangePlanner> direct_planner;
    if (plan.spec.context_exchange && plan.spec.p > 1) {
      direct_planner = std::make_unique<core::ExchangePlanner>(plan.spec);
    }
    const sched::ScheduleResult direct = sched::run_pipeline(
        plan.spec, plan.programs, direct_planner.get(), "diff");

    // The external path a user of slimpipe_sim --schedule takes.
    const ScheduleIR table =
        ir::import_text(ir::export_text(lower_plan(plan, point.scheme)));
    const sched::PipelineSpec applied = ir::apply_header(table, point.spec);
    const analysis::VerifyResult verdict =
        analysis::verify_ir(table, applied);
    ASSERT_TRUE(verdict.ok()) << analysis::render(verdict.findings);
    std::unique_ptr<core::ExchangePlanner> planner;
    if (applied.context_exchange && applied.p > 1) {
      planner = std::make_unique<core::ExchangePlanner>(applied);
    }
    const sched::ScheduleResult imported = sched::run_pipeline(
        applied, ir::to_programs(table), planner.get(), "diff");

    EXPECT_EQ(imported.iteration_time, direct.iteration_time);
    EXPECT_EQ(imported.bubble_fraction, direct.bubble_fraction);
    EXPECT_EQ(imported.mfu, direct.mfu);
    EXPECT_EQ(imported.peak_memory, direct.peak_memory);
    EXPECT_EQ(imported.first_device_memory, direct.first_device_memory);
    EXPECT_EQ(imported.last_device_memory, direct.last_device_memory);
    EXPECT_EQ(imported.device_peaks, direct.device_peaks);
    EXPECT_EQ(imported.exchange_bytes_max_device,
              direct.exchange_bytes_max_device);
    EXPECT_EQ(imported.oom, direct.oom);
  }
}

// ---------------------------------------------------------------------------
// Golden file: the text format is stable across changes — the checked-in
// export re-imports byte-identically and matches a fresh lowering.

TEST(IrGolden, GoldenFileRoundTripsAndMatchesLowering) {
  const std::string path =
      std::string(SLIM_TEST_DATA_DIR) + "/golden_1f1b_p2_m4.ir";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string golden = buffer.str();

  const ScheduleIR imported = ir::import_text(golden);
  EXPECT_EQ(ir::export_text(imported), golden);

  const core::SchedulePlan plan = onef1b_plan(2, 4);
  EXPECT_EQ(ir::lower(plan.spec, plan.programs, "1F1B"), imported);

  const sched::PipelineSpec applied =
      ir::apply_header(imported, base_spec(2, 1, 4));
  const analysis::VerifyResult verdict =
      analysis::verify_ir(imported, applied);
  EXPECT_TRUE(verdict.ok()) << analysis::render(verdict.findings);
}

// ---------------------------------------------------------------------------
// Corrupted fixtures: one per verify rule.

TEST(VerifyDeadlock, ReorderedBackwardYieldsWitnessCycle) {
  core::SchedulePlan plan = onef1b_plan(2, 2);
  // Device 0 demands B0 before it has forwarded anything: its B0 waits on
  // device 1's backward, which waits on device 1's forward, which waits on
  // device 0's F0 — stuck behind B0. A genuine 4-row cycle.
  sched::DeviceProgram& program = plan.programs[0];
  ASSERT_EQ(program.size(), 4u);
  ASSERT_EQ(program[2].type, PassType::Backward);
  const Pass backward = program[2];
  program.erase(program.begin() + 2);
  program.insert(program.begin(), backward);

  const analysis::VerifyResult verdict = analysis::verify_ir(
      lower_plan(plan, core::Scheme::OneF1B), plan.spec);
  ASSERT_TRUE(has_rule(verdict.findings, "verify-deadlock"))
      << analysis::render(verdict.findings);
  for (const analysis::Finding& finding : verdict.findings) {
    if (finding.rule_id != "verify-deadlock") continue;
    EXPECT_NE(finding.message.find("witness cycle"), std::string::npos)
        << finding.message;
    EXPECT_NE(finding.message.find("length 4"), std::string::npos)
        << finding.message;
  }
}

TEST(VerifyCausality, DroppedSendLeavesDanglingRecv) {
  const core::SchedulePlan plan = onef1b_plan(2, 2);
  ScheduleIR table = lower_plan(plan, core::Scheme::OneF1B);
  const auto it = std::find_if(
      table.rows.begin(), table.rows.end(), [](const Row& row) {
        return row.device == 0 && row.kind == PassType::Forward &&
               row.microbatch == 0;
      });
  ASSERT_NE(it, table.rows.end());
  it->send_to = kNoEndpoint;  // device 1 still expects the activation

  const analysis::VerifyResult verdict = analysis::verify_ir(table, plan.spec);
  ASSERT_TRUE(has_rule(verdict.findings, "verify-causality"))
      << analysis::render(verdict.findings);
  bool dangling = false;
  for (const analysis::Finding& finding : verdict.findings) {
    dangling = dangling ||
               finding.message.find("dangling recv") != std::string::npos;
  }
  EXPECT_TRUE(dangling) << analysis::render(verdict.findings);
  EXPECT_FALSE(has_rule(verdict.findings, "verify-progress"));
  EXPECT_FALSE(has_rule(verdict.findings, "verify-deadlock"));
}

TEST(VerifyProgress, RemovedForwardOrphansBackward) {
  const core::SchedulePlan plan = onef1b_plan(2, 2);
  ScheduleIR table = lower_plan(plan, core::Scheme::OneF1B);
  const auto it = std::find_if(
      table.rows.begin(), table.rows.end(), [](const Row& row) {
        return row.device == 0 && row.kind == PassType::Forward &&
               row.microbatch == 0;
      });
  ASSERT_NE(it, table.rows.end());
  table.rows.erase(it);
  renumber(table);  // keep ir-structure out of this fixture

  const analysis::VerifyResult verdict = analysis::verify_ir(table, plan.spec);
  ASSERT_TRUE(has_rule(verdict.findings, "verify-progress"))
      << analysis::render(verdict.findings);
  bool orphaned = false;
  for (const analysis::Finding& finding : verdict.findings) {
    if (finding.rule_id != "verify-progress") continue;
    EXPECT_NE(finding.location.find("stage 0"), std::string::npos)
        << finding.location;
    orphaned = orphaned ||
               finding.message.find("orphaned backward") != std::string::npos;
  }
  EXPECT_TRUE(orphaned) << analysis::render(verdict.findings);
}

TEST(VerifyMemoryCert, OverBudgetLedgerFlagged) {
  const core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::GPipe, base_spec(2, 1, 4));
  const ScheduleIR table = lower_plan(plan, core::Scheme::GPipe);

  const analysis::VerifyResult clean = analysis::verify_ir(table, plan.spec);
  ASSERT_TRUE(clean.ok()) << analysis::render(clean.findings);
  const double peak = clean.certificate.device_peak[0];
  ASSERT_GT(peak, 0.0);

  analysis::VerifyOptions options;
  options.activation_budget_bytes = peak * 0.5;
  const analysis::VerifyResult tight =
      analysis::verify_ir(table, plan.spec, options);
  ASSERT_TRUE(has_rule(tight.findings, "verify-memory-cert"))
      << analysis::render(tight.findings);
  bool budget = false;
  for (const analysis::Finding& finding : tight.findings) {
    budget = budget ||
             finding.message.find("exceeds the budget") != std::string::npos;
  }
  EXPECT_TRUE(budget) << analysis::render(tight.findings);
}

TEST(VerifyMemoryCert, NegativeLedgerDipFlagged) {
  // A lone backward frees activation that was never allocated.
  const core::SchedulePlan plan = onef1b_plan(2, 2);
  ScheduleIR table = lower_plan(plan, core::Scheme::OneF1B);
  const auto it = std::find_if(
      table.rows.begin(), table.rows.end(), [](const Row& row) {
        return row.device == 0 && row.kind == PassType::Forward &&
               row.microbatch == 0;
      });
  ASSERT_NE(it, table.rows.end());
  table.rows.erase(it);
  renumber(table);
  const analysis::VerifyResult verdict = analysis::verify_ir(table, plan.spec);
  EXPECT_TRUE(has_rule(verdict.findings, "verify-memory-cert"))
      << analysis::render(verdict.findings);
}

TEST(IrStructure, DuplicateOrderFlagged) {
  const core::SchedulePlan plan = onef1b_plan(2, 2);
  ScheduleIR table = lower_plan(plan, core::Scheme::OneF1B);
  table.rows[1].order = table.rows[0].order;
  const analysis::VerifyResult verdict = analysis::verify_ir(table, plan.spec);
  EXPECT_TRUE(has_rule(verdict.findings, "ir-structure"))
      << analysis::render(verdict.findings);
}

// ---------------------------------------------------------------------------
// Memory certificate: the statically certified per-device peaks reconcile
// with the simulator's replayed footprint within the standard tolerance.

TEST(MemoryCert, ReconcilesWithReplayedFootprint) {
  for (const core::Scheme scheme :
       {core::Scheme::GPipe, core::Scheme::OneF1B, core::Scheme::TeraPipe,
        core::Scheme::ZBV, core::Scheme::VHalf,
        core::Scheme::Interleaved1F1B, core::Scheme::SlimPipe}) {
    SCOPED_TRACE(core::scheme_name(scheme));
    sched::PipelineSpec spec = base_spec(4, 4, 4);
    spec.v = 2;
    spec.context_exchange = false;  // exchange traffic is outside the cert
    const core::SchedulePlan plan = core::plan_scheme(scheme, spec);
    const analysis::VerifyResult verdict =
        analysis::verify_ir(lower_plan(plan, scheme), plan.spec);
    ASSERT_TRUE(verdict.ok()) << analysis::render(verdict.findings);

    const sched::ScheduleResult result =
        sched::run_pipeline(plan.spec, plan.programs, nullptr, "cert");
    const mem::ReconcileReport report = mem::reconcile_peaks(
        result.memory, verdict.certificate.measured_peaks(), 0.5);
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

// ---------------------------------------------------------------------------
// Import rejects malformed text with line-numbered errors.

TEST(IrImport, RejectsMalformedText) {
  EXPECT_THROW(ir::import_text(""), std::runtime_error);
  EXPECT_THROW(ir::import_text("not-an-ir 1\nend\n"), std::runtime_error);
  const std::string no_end =
      "slimpipe-ir 1\nscheme x\np 1\nv 1\nn 1\nm 1\n"
      "columns device order kind mb slice chunk stage recv send\n";
  EXPECT_THROW(ir::import_text(no_end), std::runtime_error);
  const std::string bad_row =
      no_end + "row 0 0 Q 0 0 0 0 . .\nend\n";
  EXPECT_THROW(ir::import_text(bad_row), std::runtime_error);
}

}  // namespace
