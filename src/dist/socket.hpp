#pragma once

// Minimal POSIX socket layer for the multi-process pipeline runtime.
//
// Adjacent pipeline stages (and each worker's control channel to the
// supervisor) are connected by AF_UNIX stream socketpairs — the local
// stand-in for the point-to-point links of a multi-machine deployment.
// Everything here is deliberately boring: RAII fds, retried-on-EINTR
// exact-size reads/writes that report peer death as a status instead of a
// signal (MSG_NOSIGNAL — a worker whose neighbor was SIGKILLed must keep
// running, not die of SIGPIPE), and poll helpers the supervisor's
// single-threaded event loop is built on.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace slim::dist {

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Connected full-duplex local stream pair: end `a` stays with one process,
/// end `b` with the other (each closes the end it does not use after fork).
struct SocketPair {
  Fd a;
  Fd b;
};

SocketPair make_socket_pair();

/// Outcome of an exact-size read.
enum class IoStatus : int {
  Ok,       // all requested bytes delivered
  Eof,      // clean close before any byte (peer finished or died idle)
  Torn,     // peer vanished mid-object — a half-written message
  Corrupt,  // caller-level framing/CRC validation failed
};

const char* io_status_name(IoStatus status);

/// Writes all n bytes (EINTR retried, MSG_NOSIGNAL). Returns false when the
/// peer is gone (EPIPE/ECONNRESET) — the caller decides whether that is
/// fatal; any other errno throws.
bool send_all(int fd, const void* data, std::size_t n);

/// Reads exactly n bytes: Ok, Eof (clean close before any byte) or Torn
/// (connection dropped partway through).
IoStatus recv_all(int fd, void* data, std::size_t n);

/// True when fd is readable (or at EOF) within timeout_ms. EINTR retried.
bool poll_readable(int fd, int timeout_ms);

/// Polls all fds at once (negative entries skipped); out[i] is true when
/// fds[i] is readable or at EOF.
std::vector<bool> poll_readable_many(const std::vector<int>& fds,
                                     int timeout_ms);

/// Establishes one stage-boundary transport with bounded retry over
/// transient connect failures. `fail_first` initial attempts fail
/// (injected by a fault::SocketConnectFail rule — 0 in healthy runs);
/// each failure invokes on_retry(attempt) and backs off briefly. Throws
/// after max_attempts consecutive failures.
SocketPair connect_with_retry(int fail_first, int max_attempts,
                              const std::function<void(int)>& on_retry);

}  // namespace slim::dist
