#include <algorithm>
#include <deque>
#include <limits>

#include "src/model/flops.hpp"
#include "src/sched/schemes.hpp"
#include "src/util/logging.hpp"

namespace slim::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

// Constructive greedy in the spirit of ZB-V's automatic scheduler: each
// device, when free, prefers input-gradient backwards (they unblock
// upstream devices), then forwards (bounded by the activation-memory cap),
// and fills remaining gaps with weight-gradient work. The resulting
// per-device orders are then compiled and re-timed by the shared builder.
std::vector<DeviceProgram> zbv_programs(const PipelineSpec& spec,
                                        double memory_cap_units) {
  SLIM_CHECK(spec.v == 2 && spec.layout == StageLayoutKind::VShape,
             "ZB-V requires the V-shape layout with v == 2");
  SLIM_CHECK(spec.n == 1, "ZB-V is microbatch-granular");
  const int p = spec.p;
  const int m = spec.m;
  const StageLayout layout = spec.stage_layout();
  const int S = layout.num_stages();

  const model::CostModel cost(spec.cfg, spec.gpu, pipeline_topology(spec),
                              spec.shard, spec.policy, spec.cp_mode);
  const std::int64_t layers = spec.layers_per_stage();
  const double tf = cost.forward_time(layers, spec.seq, 0);
  const double tbi = cost.backward_input_time(layers, spec.seq, 0);
  const double tbw = cost.backward_weight_time(layers, spec.seq);
  const double tvf = cost.vocab_forward_time(spec.seq, 1);
  const double tvb = cost.vocab_backward_time(spec.seq, 1);
  const double wkeep = model::wgrad_kept_fraction(spec.cfg, spec.policy);

  std::vector<std::vector<double>> fdone(
      static_cast<std::size_t>(S), std::vector<double>(static_cast<std::size_t>(m), kInf));
  std::vector<std::vector<double>> bidone = fdone;

  struct DeviceState {
    int next_f[2] = {0, 0};
    int next_bi[2] = {0, 0};
    std::deque<Pass> pending_bw;
    double mem_units = 0.0;
    double busy_until = 0.0;
    bool idling = false;  // last step was an idle wait, not real work
    DeviceProgram program;
    bool finished = false;
  };
  std::vector<DeviceState> devs(static_cast<std::size_t>(p));

  auto f_ready = [&](int dev, int chunk) -> double {
    const DeviceState& st = devs[static_cast<std::size_t>(dev)];
    const int mb = st.next_f[chunk];
    if (mb >= m) return kInf;
    const int stage = layout.stage_of(dev, chunk);
    return stage == 0 ? 0.0
                      : fdone[static_cast<std::size_t>(stage - 1)]
                             [static_cast<std::size_t>(mb)];
  };
  auto bi_ready = [&](int dev, int chunk) -> double {
    const DeviceState& st = devs[static_cast<std::size_t>(dev)];
    const int mb = st.next_bi[chunk];
    if (mb >= m) return kInf;
    const int stage = layout.stage_of(dev, chunk);
    const double own_f =
        fdone[static_cast<std::size_t>(stage)][static_cast<std::size_t>(mb)];
    if (stage == S - 1) {
      // Vocabulary forward+backward run between F and BI at the last stage;
      // the builder materializes them, the greedy accounts for their time.
      return own_f + tvf + tvb;
    }
    return std::max(own_f, bidone[static_cast<std::size_t>(stage + 1)]
                                 [static_cast<std::size_t>(mb)]);
  };

  // Earliest time device d could start any action, given current state
  // (completion times are known at scheduling time, so future readiness is
  // visible). kInf means blocked until another device acts.
  auto earliest_action_time = [&](int d) -> double {
    const DeviceState& st = devs[static_cast<std::size_t>(d)];
    double t = kInf;
    for (int c : {1, 0}) t = std::min(t, bi_ready(d, c));
    if (st.mem_units + 1.0 <= memory_cap_units + 1e-9) {
      t = std::min(t, f_ready(d, 1));
    }
    if (st.mem_units + 2.0 <= memory_cap_units + 1e-9) {
      t = std::min(t, f_ready(d, 0));
    }
    if (!st.pending_bw.empty()) t = 0.0;
    return t;
  };
  auto can_act = [&](int d, double t) -> bool {
    return earliest_action_time(d) <= t;
  };

  int unfinished = p;
  int guard = 0;
  const int guard_limit = 64 * (S * m + p) * p + 4096;
  while (unfinished > 0) {
    SLIM_CHECK(++guard < guard_limit, "ZB-V greedy failed to converge");
    // Pick the unfinished device with the earliest availability; among
    // time-ties prefer one that can actually act, so an idle waiter cannot
    // starve a runnable peer at the same timestamp.
    int dev = -1;
    double now = kInf;
    bool dev_can_act = false;
    for (int d = 0; d < p; ++d) {
      const DeviceState& cand = devs[static_cast<std::size_t>(d)];
      if (cand.finished) continue;
      if (dev < 0 || cand.busy_until < now) {
        now = cand.busy_until;
        dev = d;
        dev_can_act = can_act(d, now);
      } else if (cand.busy_until == now && !dev_can_act &&
                 can_act(d, now)) {
        dev = d;
        dev_can_act = true;
      }
    }
    SLIM_CHECK(dev >= 0, "no runnable device");
    DeviceState& st = devs[static_cast<std::size_t>(dev)];

    // Preference: BI (chunk 1 drains the V first), then F, then BW filler.
    int action = -1, chunk = -1;
    for (int c : {1, 0}) {
      if (bi_ready(dev, c) <= now) { action = 1; chunk = c; break; }
    }
    if (action < 0) {
      // Chunk-1 forwards (the up-leg of the V) may use the full cap; chunk-0
      // forwards keep one unit of headroom so the up-leg — and with it the
      // whole backward chain — can always make progress.
      if (f_ready(dev, 1) <= now &&
          st.mem_units + 1.0 <= memory_cap_units + 1e-9) {
        action = 0;
        chunk = 1;
      } else if (f_ready(dev, 0) <= now &&
                 st.mem_units + 2.0 <= memory_cap_units + 1e-9) {
        action = 0;
        chunk = 0;
      }
    }
    if (action < 0 && !st.pending_bw.empty()) action = 2;

    if (action < 0) {
      // Idle: advance to the earliest moment anything could change — our
      // own future readiness, or the moment any peer becomes able to act
      // (its action will produce new completions).
      double next = earliest_action_time(dev);  // > now, else we'd have acted
      for (int d = 0; d < p; ++d) {
        const DeviceState& other = devs[static_cast<std::size_t>(d)];
        if (d == dev || other.finished) continue;
        const double t =
            std::max(other.busy_until, earliest_action_time(d));
        next = std::min(next, std::max(t, now));
      }
      if (next == kInf) {
        std::string state = "ZB-V greedy stalled: reporter dev " +
                            std::to_string(dev) + " now " +
                            std::to_string(now) + " cap " +
                            std::to_string(memory_cap_units) + " | ";
        for (int d = 0; d < p; ++d) {
          state += "can_act(" + std::to_string(d) + ")=" +
                   (can_act(d, std::max(devs[static_cast<std::size_t>(d)]
                                            .busy_until,
                                        now))
                        ? "1"
                        : "0");
          state += " ";
        }
        for (int d = 0; d < p; ++d) {
          const DeviceState& sd = devs[static_cast<std::size_t>(d)];
          state += "[dev " + std::to_string(d) + " f=" +
                   std::to_string(sd.next_f[0]) + "/" +
                   std::to_string(sd.next_f[1]) + " bi=" +
                   std::to_string(sd.next_bi[0]) + "/" +
                   std::to_string(sd.next_bi[1]) + " bw=" +
                   std::to_string(sd.pending_bw.size()) + " mem=" +
                   std::to_string(sd.mem_units) +
                   (sd.idling ? " idle" : " run") +
                   (sd.finished ? " done" : "") + "] ";
        }
        SLIM_CHECK(false, state);
      }
      st.busy_until = next;
      st.idling = true;
      continue;
    }
    st.idling = false;

    if (action == 0) {  // Forward
      const int mb = st.next_f[chunk]++;
      const int stage = layout.stage_of(dev, chunk);
      double dur = tf;
      if (stage == S - 1) dur += tvf;
      const double end = now + dur;
      fdone[static_cast<std::size_t>(stage)][static_cast<std::size_t>(mb)] = end;
      st.mem_units += 1.0;
      st.program.push_back({PassType::Forward, mb, 0, chunk});
      st.busy_until = end;
    } else if (action == 1) {  // BackwardInput
      const int mb = st.next_bi[chunk]++;
      const int stage = layout.stage_of(dev, chunk);
      double dur = tbi;
      if (stage == S - 1) dur += tvb;
      const double end = now + dur;
      bidone[static_cast<std::size_t>(stage)][static_cast<std::size_t>(mb)] = end;
      st.mem_units -= (1.0 - wkeep);
      st.program.push_back({PassType::BackwardInput, mb, 0, chunk});
      st.pending_bw.push_back({PassType::BackwardWeight, mb, 0, chunk});
      st.busy_until = end;
    } else {  // BackwardWeight filler
      Pass bw = st.pending_bw.front();
      st.pending_bw.pop_front();
      st.mem_units -= wkeep;
      st.program.push_back(bw);
      st.busy_until = now + tbw;
    }

    if (st.next_f[0] >= m && st.next_f[1] >= m && st.next_bi[0] >= m &&
        st.next_bi[1] >= m && st.pending_bw.empty()) {
      st.finished = true;
      --unfinished;
    }
  }

  std::vector<DeviceProgram> programs;
  programs.reserve(static_cast<std::size_t>(p));
  for (DeviceState& st : devs) programs.push_back(std::move(st.program));
  return programs;
}

namespace {
ScheduleResult run_zb_family(PipelineSpec spec, double cap_units,
                             const char* name, bool want_timeline) {
  spec.v = 2;
  spec.n = 1;
  spec.layout = StageLayoutKind::VShape;
  spec.retain_kv = false;
  spec.context_exchange = false;
  // The paper notes ZB-V's built-in full checkpointing "does not work
  // properly"; both V-shaped schemes run without checkpointing (6.6).
  spec.policy = model::CheckpointPolicy::None;
  return run_pipeline(spec, zbv_programs(spec, cap_units), nullptr, name,
                      want_timeline);
}
}  // namespace

ScheduleResult run_zbv(PipelineSpec spec, bool want_timeline) {
  // Peak bounded by 1F1B's: p microbatch activations = 2p stage units.
  const double cap = 2.0 * static_cast<double>(spec.p);
  return run_zb_family(std::move(spec), cap, "ZB-V", want_timeline);
}

ScheduleResult run_vhalf(PipelineSpec spec, bool want_timeline) {
  // Table 2: (1/2 + 1/p) Ma = p + 2 stage units.
  const double cap = static_cast<double>(spec.p) + 2.0;
  return run_zb_family(std::move(spec), cap, "V-Half", want_timeline);
}

ScheduleResult run_vmin(PipelineSpec spec, bool want_timeline) {
  // V-Min targets 1/3 of 1F1B's activation peak (2p/3 stage units); a
  // two-unit floor keeps the V's up-leg schedulable.
  const double cap =
      std::max(4.0, 2.0 * static_cast<double>(spec.p) / 3.0 + 2.0);
  return run_zb_family(std::move(spec), cap, "V-Min", want_timeline);
}

}  // namespace slim::sched
