// slimpipe_lint — static analysis front-end.
//
// Lints a scheme/spec combination without running the simulator: generates
// the scheme's per-device programs, runs the schedule pass (per-pass
// invariants plus the scheme's declared in-flight activation bound), lowers
// to the tabular IR and runs the whole-schedule verification engine
// (causality, deadlock, progress, memory certificate), then builds the op
// graph and runs the graph pass (acyclicity, channel FIFO matching,
// memory-ledger conservation). Any Error finding fails the run.
//
//   slimpipe_lint --scheme slimpipe --model 13b --p 4 --n 8 --m 8
//   slimpipe_lint --scheme all --p 8
//   slimpipe_lint --sweep                      # acceptance grid, all schemes
//   slimpipe_lint --scheme 1f1b --emit-ir s.ir # export the lowered schedule
//   slimpipe_lint --ir s.ir                    # certify an external schedule
//
// Exit status: 0 = clean, 1 = lint findings, 2 = usage error,
// 3 = verifier errors (ir-structure / verify-* rules, or unreadable IR).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/graph_check.hpp"
#include "src/analysis/schedule_check.hpp"
#include "src/analysis/verify.hpp"
#include "src/core/context_exchange.hpp"
#include "src/core/runner.hpp"
#include "src/ir/schedule_ir.hpp"
#include "src/sched/builder.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

using namespace slim;

namespace {

void usage() {
  std::printf(R"(usage: slimpipe_lint [options]

model / workload
  --model NAME       7b | 13b | 70b | 149b | 8x7b | 8x22b   (default 13b)
  --seq TOKENS       context length                          (default 131072)
  --m N              microbatches per iteration              (default 4)

scheme / schedule
  --scheme NAME      gpipe | terapipe | 1f1b | interleaved | zbv | vhalf |
                     vmin | slimpipe | all                   (default all)
  --t/--c/--e/--p N  tensor / context / expert / pipeline parallel sizes
  --d N              data parallel size (optimizer sharding) (default 1)
  --v N              stage chunks per device                 (default 1)
  --n N              slices per sequence (slimpipe/terapipe) (default p)
  --ckpt POLICY      none | selective | full                 (default none)
  --offload RATIO    activation offload fraction [0,1)       (default 0)
  --no-exchange      disable attention context exchange
  --no-vocab-par     keep the output layer on the last stage

modes
  --sweep            lint every scheme over p in {2,4,8}, n in {1,4},
                     m in {p, 2p} (other options fix the rest of the spec);
                     identical findings are reported once across points
  --emit-ir FILE     write the scheme's lowered tabular IR to FILE
                     ("-" = stdout); requires a single --scheme
  --ir FILE          certify an external IR schedule file instead of a
                     scheme (workload options still shape the spec; the
                     IR header supplies p/v/n/m/layout/...)
  --verbose          print a line for clean combinations too

exit status
  0 = clean, 1 = lint findings, 2 = usage error,
  3 = verifier errors (ir-structure / verify-* rules, or unreadable IR)
)");
}

model::TransformerConfig pick_model(const std::string& name) {
  if (name == "7b") return model::llama7b();
  if (name == "13b") return model::llama13b();
  if (name == "70b") return model::llama70b();
  if (name == "149b") return model::llama149b();
  if (name == "8x7b") return model::mixtral8x7b();
  if (name == "8x22b") return model::mixtral8x22b();
  std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
  std::exit(2);
}

model::CheckpointPolicy pick_policy(const std::string& name) {
  if (name == "none") return model::CheckpointPolicy::None;
  if (name == "selective") return model::CheckpointPolicy::Selective;
  if (name == "full") return model::CheckpointPolicy::Full;
  std::fprintf(stderr, "unknown checkpoint policy '%s'\n", name.c_str());
  std::exit(2);
}

std::vector<core::Scheme> pick_schemes(const std::string& name) {
  if (name == "all") return core::all_schemes();
  if (name == "gpipe") return {core::Scheme::GPipe};
  if (name == "terapipe") return {core::Scheme::TeraPipe};
  if (name == "1f1b") return {core::Scheme::OneF1B};
  if (name == "interleaved") return {core::Scheme::Interleaved1F1B};
  if (name == "zbv") return {core::Scheme::ZBV};
  if (name == "vhalf") return {core::Scheme::VHalf};
  if (name == "vmin") return {core::Scheme::VMin};
  if (name == "slimpipe") return {core::Scheme::SlimPipe};
  std::fprintf(stderr, "unknown scheme '%s'\n", name.c_str());
  std::exit(2);
}

/// Runs both passes over one scheme/spec combination and returns the
/// combined findings. Exceptions from plan generation or graph building
/// (SLIM_CHECK failures) surface as a synthetic `internal-error` finding.
std::vector<analysis::Finding> lint_combo(core::Scheme scheme,
                                          sched::PipelineSpec spec) {
  std::vector<analysis::Finding> findings;
  try {
    const core::SchedulePlan plan = core::plan_scheme(scheme, std::move(spec));

    analysis::ScheduleLintOptions sched_opts;
    sched_opts.max_inflight_units = plan.max_inflight_units;
    findings = analysis::check_schedule(plan.spec, plan.programs, sched_opts);

    const ir::ScheduleIR table =
        ir::lower(plan.spec, plan.programs, core::scheme_name(scheme));
    const analysis::VerifyResult verdict =
        analysis::verify_ir(table, plan.spec);
    findings.insert(findings.end(), verdict.findings.begin(),
                    verdict.findings.end());
    // A schedule the pre-build passes reject cannot be compiled meaningfully.
    if (analysis::has_errors(findings)) return findings;

    // Build the graph ourselves (lint disabled) so rule violations come
    // back as findings instead of the compile-time SLIM_CHECK abort.
    const bool lint_was_on = sched::compile_lint_enabled();
    sched::set_compile_lint(false);
    std::unique_ptr<core::ExchangePlanner> planner;
    if (plan.spec.context_exchange && plan.spec.p > 1) {
      planner = std::make_unique<core::ExchangePlanner>(plan.spec);
    }
    sched::BuildOutput built;
    try {
      built = sched::compile(plan.spec, plan.programs, planner.get());
    } catch (...) {
      sched::set_compile_lint(lint_was_on);
      throw;
    }
    sched::set_compile_lint(lint_was_on);

    const std::vector<analysis::Finding> graph_findings =
        analysis::check_graph(*built.graph, plan.spec);
    findings.insert(findings.end(), graph_findings.begin(),
                    graph_findings.end());
  } catch (const std::exception& e) {
    findings.push_back({analysis::Severity::Error, "internal-error",
                        std::string(core::scheme_name(scheme)), e.what()});
  }
  return findings;
}

std::string combo_label(core::Scheme scheme, const sched::PipelineSpec& spec) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s p=%d v=%d n=%d m=%d",
                core::scheme_name(scheme), spec.p, spec.v, spec.n, spec.m);
  return buf;
}

/// Verifier-class findings (the IR structure and verify-* rules) get their
/// own exit code so drivers can tell a rejected schedule from a lint nit.
bool is_verifier_finding(const analysis::Finding& finding) {
  return finding.rule_id == "ir-structure" ||
         finding.rule_id.rfind("verify-", 0) == 0;
}

/// Certifies an external IR schedule file: import, overlay the header onto
/// the workload spec, run the schedule lint and the verification engine.
/// Returns the exit status (0/1/3).
int lint_ir_file(const std::string& path, const sched::PipelineSpec& base,
                 bool verbose) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read IR file '%s'\n", path.c_str());
    return 3;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  std::vector<analysis::Finding> findings;
  try {
    const ir::ScheduleIR table = ir::import_text(buffer.str());
    const sched::PipelineSpec spec = ir::apply_header(table, base);
    const std::string err = spec.validate();
    if (!err.empty()) {
      std::fprintf(stderr, "%s: header yields an invalid spec: %s\n",
                   path.c_str(), err.c_str());
      return 3;
    }

    analysis::ScheduleLintOptions sched_opts;
    sched_opts.max_inflight_units = spec.max_inflight_units;
    findings =
        analysis::check_schedule(spec, ir::to_programs(table), sched_opts);
    const analysis::VerifyResult verdict = analysis::verify_ir(table, spec);
    findings.insert(findings.end(), verdict.findings.begin(),
                    verdict.findings.end());
    if (findings.empty()) {
      std::printf("%s: %s certified clean (%zu rows)\n", path.c_str(),
                  table.scheme.c_str(), table.rows.size());
      if (verbose) {
        for (const analysis::StageCertificate& sc :
             verdict.certificate.stages) {
          std::printf("  stage %d (dev %d): certified peak %.3f GiB\n",
                      sc.stage, sc.device, sc.peak_bytes / kGiB);
        }
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 3;
  }

  std::printf("%s: %s\n%s", path.c_str(),
              analysis::summary(findings).c_str(),
              analysis::render(findings).c_str());
  for (const analysis::Finding& finding : findings) {
    if (is_verifier_finding(finding)) return 3;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_name = "13b", scheme_name = "all", ckpt = "none";
  std::string ir_path, emit_ir_path;
  std::int64_t seq = 131072, t = 8, c = 1, e = 1, d = 1;
  int p = 4, v = 1, n = 0, m = 4;
  double offload = 0.0;
  bool sweep = false, verbose = false, exchange = true, vocab_parallel = true;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    const std::string arg = argv[i];
    if (arg == "--model") model_name = next();
    else if (arg == "--scheme") scheme_name = next();
    else if (arg == "--seq") seq = std::atoll(next());
    else if (arg == "--t") t = std::atoll(next());
    else if (arg == "--c") c = std::atoll(next());
    else if (arg == "--e") e = std::atoll(next());
    else if (arg == "--d") d = std::atoll(next());
    else if (arg == "--p") p = std::atoi(next());
    else if (arg == "--v") v = std::atoi(next());
    else if (arg == "--n") n = std::atoi(next());
    else if (arg == "--m") m = std::atoi(next());
    else if (arg == "--ckpt") ckpt = next();
    else if (arg == "--offload") offload = std::atof(next());
    else if (arg == "--sweep") sweep = true;
    else if (arg == "--ir") ir_path = next();
    else if (arg == "--emit-ir") emit_ir_path = next();
    else if (arg == "--verbose") verbose = true;
    else if (arg == "--no-exchange") exchange = false;
    else if (arg == "--no-vocab-par") vocab_parallel = false;
    else if (arg == "--help" || arg == "-h") { usage(); return 0; }
    else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }

  const auto cfg = pick_model(model_name);
  const auto schemes = pick_schemes(scheme_name);
  const auto gpu = model::hopper80();

  sched::PipelineSpec base;
  base.cfg = cfg;
  base.gpu = gpu;
  base.shard = {t, c, e, 8};
  base.policy = pick_policy(ckpt);
  base.d = d;
  base.seq = seq;
  base.offload.ratio = offload;
  base.offload.pcie_bandwidth = gpu.pcie_bandwidth;
  base.context_exchange = exchange;

  if (!ir_path.empty()) {
    if (sweep || !emit_ir_path.empty()) {
      std::fprintf(stderr, "--ir cannot be combined with --sweep/--emit-ir\n");
      return 2;
    }
    base.p = p;
    base.v = v;
    base.n = n > 0 ? n : 1;
    base.m = m;
    base.vocab_parallel = vocab_parallel;
    return lint_ir_file(ir_path, base, verbose);
  }

  struct Combo {
    core::Scheme scheme;
    sched::PipelineSpec spec;
  };
  std::vector<Combo> combos;
  if (sweep) {
    for (const core::Scheme scheme : schemes) {
      for (const int sp : {2, 4, 8}) {
        for (const int sn : {1, 4}) {
          for (const int sm : {sp, 2 * sp}) {
            sched::PipelineSpec spec = base;
            spec.p = sp;
            spec.v = v;
            spec.n = sn;
            spec.m = sm;
            if (scheme == core::Scheme::TeraPipe && sn > 1 && sn % sp != 0) {
              // Uniform slicing requires n to be a multiple of p; TeraPipe
              // (unlike SlimPipe) does not normalize n, so round it up.
              spec.n = ((sn + sp - 1) / sp) * sp;
            }
            spec.vocab_parallel =
                vocab_parallel && scheme == core::Scheme::SlimPipe;
            combos.push_back({scheme, std::move(spec)});
          }
        }
      }
    }
  } else {
    for (const core::Scheme scheme : schemes) {
      sched::PipelineSpec spec = base;
      spec.p = p;
      spec.v = v;
      spec.n = n > 0 ? n : (scheme == core::Scheme::SlimPipe ? p : 1);
      spec.m = m;
      spec.vocab_parallel = vocab_parallel && scheme == core::Scheme::SlimPipe;
      combos.push_back({scheme, std::move(spec)});
    }
  }

  if (!emit_ir_path.empty()) {
    if (combos.size() != 1) {
      std::fprintf(stderr,
                   "--emit-ir needs exactly one combination (give a single "
                   "--scheme, no --sweep)\n");
      return 2;
    }
    const core::SchedulePlan plan =
        core::plan_scheme(combos[0].scheme, combos[0].spec);
    const ir::ScheduleIR table = ir::lower(
        plan.spec, plan.programs, core::scheme_name(combos[0].scheme));
    const std::string text = ir::export_text(table);
    if (emit_ir_path == "-") {
      std::fputs(text.c_str(), stdout);
    } else {
      std::ofstream out(emit_ir_path);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", emit_ir_path.c_str());
        return 2;
      }
      out << text;
      std::printf("wrote %s (%zu rows)\n", emit_ir_path.c_str(),
                  table.rows.size());
    }
    return 0;
  }

  int dirty = 0;
  bool verifier_errors = false;
  std::size_t total_findings = 0, duplicates = 0;
  // Sweep points often repeat one root cause (same rule, location, message)
  // at every grid size; report each distinct finding once.
  std::set<std::string> seen;
  for (const Combo& combo : combos) {
    auto findings = lint_combo(combo.scheme, combo.spec);
    const std::string label = combo_label(combo.scheme, combo.spec);
    for (const analysis::Finding& finding : findings) {
      verifier_errors = verifier_errors || is_verifier_finding(finding);
    }
    if (sweep) {
      std::vector<analysis::Finding> fresh;
      for (analysis::Finding& finding : findings) {
        const std::string key =
            finding.rule_id + '\x1f' + finding.location + '\x1f' +
            finding.message;
        if (seen.insert(key).second) fresh.push_back(std::move(finding));
        else ++duplicates;
      }
      findings = std::move(fresh);
      if (findings.empty() && duplicates > 0) {
        // Dirty point, but everything on it was already reported.
        continue;
      }
    }
    if (findings.empty()) {
      if (verbose) std::printf("%-40s clean\n", label.c_str());
      continue;
    }
    ++dirty;
    total_findings += findings.size();
    std::printf("%s: %s\n%s", label.c_str(),
                analysis::summary(findings).c_str(),
                analysis::render(findings).c_str());
  }

  if (dirty == 0 && total_findings == 0 && duplicates == 0) {
    std::printf("%zu combination%s linted, no findings\n", combos.size(),
                combos.size() == 1 ? "" : "s");
    return 0;
  }
  std::printf("%d of %zu combinations with findings (%zu distinct", dirty,
              combos.size(), total_findings);
  if (duplicates > 0) {
    std::printf(", %zu duplicate%s suppressed", duplicates,
                duplicates == 1 ? "" : "s");
  }
  std::printf(")\n");
  return verifier_errors ? 3 : 1;
}
