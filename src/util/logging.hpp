#pragma once

// Minimal thread-safe logging for the SlimPipe library.
//
// Usage:
//   SLIM_LOG(Info) << "built schedule with " << n << " ops";
//
// The log level is process-global and can be raised to silence output in
// benchmarks (set_log_level(LogLevel::Warn)).

#include <mutex>
#include <sstream>
#include <string>

namespace slim {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the minimum severity that will be emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace slim

#define SLIM_LOG(severity) \
  ::slim::detail::LogLine(::slim::LogLevel::severity, __FILE__, __LINE__)

/// Fatal-on-violation check used for internal invariants (always enabled).
#define SLIM_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::slim::detail::check_failed(#cond, msg, __FILE__, __LINE__);        \
    }                                                                      \
  } while (false)

namespace slim::detail {
[[noreturn]] void check_failed(const char* cond, const std::string& msg,
                               const char* file, int line);
}  // namespace slim::detail
