// slimpipe_report — render, validate and diff slimpipe-bench-report files.
//
//   slimpipe_report results/bench_fig7_imbalance.json
//       pretty-prints the report (series tables + run summary)
//
//   slimpipe_report --diff old.json new.json
//       cell-wise comparison of two reports: changed cells show
//       "a -> b (+x.x%)" for numeric values, run metrics are diffed
//       metric-by-metric
//
//   slimpipe_report --validate FILE...
//       structural schema check; exits non-zero and lists every issue when
//       a file does not conform

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/obs/report.hpp"

using namespace slim;

namespace {

void usage() {
  std::printf(R"(usage: slimpipe_report FILE
       slimpipe_report --diff FILE_A FILE_B
       slimpipe_report --validate FILE...

Renders, diffs or schema-checks slimpipe-bench-report JSON files (written
by the bench binaries and slimpipe_sim --json).
)");
}

bool load_or_fail(const std::string& path, obs::BenchReport* out) {
  std::string error;
  if (!obs::load_report(path, out, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

int validate_files(const std::vector<std::string>& paths) {
  int bad = 0;
  for (const auto& path : paths) {
    obs::BenchReport report;
    if (!load_or_fail(path, &report)) {
      ++bad;
      continue;
    }
    // Re-serialize and validate the document shape; load_report already
    // proved it parses, validate_report checks the schema contract.
    const auto issues = obs::validate_report(obs::report_to_json(report));
    if (issues.empty()) {
      std::printf("%s: ok\n", path.c_str());
    } else {
      ++bad;
      std::printf("%s: %zu issue(s)\n", path.c_str(), issues.size());
      for (const auto& issue : issues) {
        std::printf("  - %s\n", issue.c_str());
      }
    }
  }
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    usage();
    return args.empty() ? 1 : 0;
  }

  if (args[0] == "--validate") {
    if (args.size() < 2) {
      std::fprintf(stderr, "--validate needs at least one file\n");
      return 1;
    }
    return validate_files({args.begin() + 1, args.end()});
  }

  if (args[0] == "--diff") {
    if (args.size() != 3) {
      std::fprintf(stderr, "--diff needs exactly two files\n");
      return 1;
    }
    obs::BenchReport a, b;
    if (!load_or_fail(args[1], &a) || !load_or_fail(args[2], &b)) return 1;
    std::printf("%s", obs::render_diff(a, b).c_str());
    return 0;
  }

  if (args.size() != 1) {
    usage();
    return 1;
  }
  obs::BenchReport report;
  if (!load_or_fail(args[0], &report)) return 1;
  std::printf("%s", obs::render_report(report).c_str());
  return 0;
}
