file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_imbalance.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig7_imbalance.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig7_imbalance.dir/bench_fig7_imbalance.cpp.o"
  "CMakeFiles/bench_fig7_imbalance.dir/bench_fig7_imbalance.cpp.o.d"
  "bench_fig7_imbalance"
  "bench_fig7_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
