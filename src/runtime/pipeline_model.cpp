#include "src/runtime/pipeline_model.hpp"

#include <cmath>

#include "src/numerics/cross_entropy.hpp"
#include "src/numerics/norm_act.hpp"
#include "src/util/logging.hpp"

namespace slim::rt {

PipelineModel PipelineModel::build(num::BlockDims dims, std::int64_t vocab,
                                   int layers_total, int stages, Rng& rng,
                                   int chunks_per_stage) {
  const int total_stages = stages * chunks_per_stage;
  SLIM_CHECK(stages >= 1 && chunks_per_stage >= 1 &&
                 layers_total >= total_stages,
             "need at least one layer per stage chunk");
  PipelineModel model;
  model.dims = dims;
  model.vocab = vocab;
  model.layers_total = layers_total;
  model.stages = stages;
  model.chunks_per_stage = chunks_per_stage;
  model.embedding = num::Tensor::randn(
      vocab, dims.hidden, rng,
      0.5f / std::sqrt(static_cast<float>(dims.hidden)));
  model.final_norm = num::Tensor(1, dims.hidden);
  model.final_norm.fill(1.0f);
  for (int i = 0; i < layers_total; ++i) {
    model.layer_weights.push_back(num::LayerWeights::random(dims, rng));
  }
  // Even split over global stages; earlier stages take the remainder.
  const int base = layers_total / total_stages;
  const int rem = layers_total % total_stages;
  int begin = 0;
  for (int s = 0; s < total_stages; ++s) {
    const int count = base + (s < rem ? 1 : 0);
    model.stage_layers.emplace_back(begin, begin + count);
    begin += count;
  }
  return model;
}

std::vector<std::vector<int>> PipelineModel::owned_layers() const {
  std::vector<std::vector<int>> owned(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    for (int chunk = 0; chunk < chunks_per_stage; ++chunk) {
      const auto [lo, hi] =
          stage_layers[static_cast<std::size_t>(chunk * stages + s)];
      for (int i = lo; i < hi; ++i) {
        owned[static_cast<std::size_t>(s)].push_back(i);
      }
    }
  }
  return owned;
}

ReferenceResult reference_run(
    const PipelineModel& model,
    const std::vector<std::vector<std::int64_t>>& tokens,
    const std::vector<std::vector<std::int64_t>>& targets) {
  const int m = static_cast<int>(tokens.size());

  ReferenceResult result;
  result.grads.embedding = num::Tensor(model.vocab, model.dims.hidden);
  for (int i = 0; i < model.layers_total; ++i) {
    result.grads.layers.push_back(num::LayerGrads::zeros(model.dims));
  }
  result.grads.final_norm = num::Tensor(1, model.dims.hidden);

  std::vector<num::Layer> layers;
  for (const auto& w : model.layer_weights) layers.emplace_back(model.dims, w);

  for (int mb = 0; mb < m; ++mb) {
    // Microbatches may carry different sequence lengths (elastic layouts).
    const std::int64_t seq =
        static_cast<std::int64_t>(tokens[static_cast<std::size_t>(mb)].size());
    num::Tensor x(seq, model.dims.hidden);
    for (std::int64_t r = 0; r < seq; ++r) {
      const std::int64_t id = tokens[static_cast<std::size_t>(mb)]
                                    [static_cast<std::size_t>(r)];
      for (std::int64_t c = 0; c < model.dims.hidden; ++c) {
        x.at(r, c) = model.embedding.at(id, c);
      }
    }
    for (num::Layer& layer : layers) x = layer.forward_slice(x, 0, mb);

    const num::Tensor hidden = num::rmsnorm(x, model.final_norm);
    const num::Tensor logits = num::matmul_nt(hidden, model.embedding);
    num::CeResult ce =
        num::cross_entropy(logits, targets[static_cast<std::size_t>(mb)]);
    result.loss += ce.loss / static_cast<double>(m);
    for (std::int64_t i = 0; i < ce.dlogits.size(); ++i) {
      ce.dlogits.data()[i] /= static_cast<float>(m);
    }
    result.grads.embedding.add_(num::matmul_tn(ce.dlogits, hidden));
    const num::Tensor dhidden = num::matmul(ce.dlogits, model.embedding);
    num::Tensor dx = num::rmsnorm_bwd(x, model.final_norm, dhidden,
                                      result.grads.final_norm);
    for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
      const std::size_t global =
          layers.size() - static_cast<std::size_t>(it - layers.rbegin()) - 1;
      dx = it->backward_slice(dx, result.grads.layers[global], mb);
    }
    for (std::int64_t r = 0; r < seq; ++r) {
      const std::int64_t id = tokens[static_cast<std::size_t>(mb)]
                                    [static_cast<std::size_t>(r)];
      for (std::int64_t c = 0; c < model.dims.hidden; ++c) {
        result.grads.embedding.at(id, c) += dx.at(r, c);
      }
    }
  }
  return result;
}

}  // namespace slim::rt
