#include "src/model/slice_balance.hpp"

namespace slim::model {

core::SliceLayout balanced_layout(const CostModel& cost, std::int64_t seq,
                                  int n, std::int64_t align) {
  const auto prefix_flops = [&cost](std::int64_t x) {
    return cost.attn_block_flops(static_cast<double>(x),
                                 CostModel::causal_kv_equiv(x, 0));
  };
  return core::SliceLayout::balanced(seq, n, prefix_flops, align);
}

std::vector<core::SliceLayout> balanced_layouts(
    const CostModel& cost, const std::vector<std::int64_t>& mb_seqs, int n,
    std::int64_t align) {
  std::vector<core::SliceLayout> out;
  out.reserve(mb_seqs.size());
  for (const std::int64_t seq : mb_seqs) {
    out.push_back(balanced_layout(cost, seq, n, align));
  }
  return out;
}

}  // namespace slim::model
