#include "src/core/context_exchange.hpp"

#include <algorithm>
#include <vector>

#include "src/sched/builder.hpp"
#include "src/util/logging.hpp"

namespace slim::core {

ExchangePlanner::ExchangePlanner(const sched::PipelineSpec& spec)
    : p_(spec.p),
      n_(spec.n),
      m_(spec.m),
      adaptive_(spec.adaptive_exchange),
      slice_len_(spec.slice_len()),
      layers_per_stage_(spec.layers_per_stage()),
      cost_(spec.cfg, spec.gpu, sched::pipeline_topology(spec), spec.shard,
            spec.policy, spec.cp_mode) {
  SLIM_CHECK(spec.n % spec.p == 0, "context exchange expects n % p == 0");
  // The closed-form rebalancing below books every slice at slice_len =
  // seq / n tokens with kv_prefix = slice * slice_len. That is exact for
  // uniform layouts and a sub-slice approximation for the *derived*
  // token-uniform family (remainder slices differ by one alignment unit —
  // noise at this planner's byte/time scale). Custom elastic layouts must
  // not reach this planner (PipelineSpec::validate rejects them).
  SLIM_CHECK(spec.layouts.empty() || spec.uniform_slices(),
             "context exchange requires uniform equal-length slices");
  const double shard_div =
      static_cast<double>(spec.shard.t) * static_cast<double>(spec.shard.c);
  q_bytes_ = static_cast<double>(slice_len_) *
             static_cast<double>(spec.cfg.hidden) * 2.0 / shard_div *
             static_cast<double>(layers_per_stage_);
  kv_bytes_per_token_ = 2.0 * static_cast<double>(spec.cfg.kv_hidden()) * 2.0 /
                        shard_div * static_cast<double>(layers_per_stage_);
  const sim::Topology topo = sched::pipeline_topology(spec);
  const int neighbor = spec.p > 1 ? 1 : 0;
  link_bandwidth_ = spec.p > 1 ? topo.bandwidth(0, neighbor) : 1.0;
  link_latency_ = spec.p > 1 ? topo.latency(0, neighbor) : 0.0;
}

double ExchangePlanner::forward_load(std::int64_t x) const {
  const std::int64_t slice = x % n_;
  return model::CostModel::causal_kv_equiv(slice_len_, slice * slice_len_);
}

double ExchangePlanner::load_of_stream(std::int64_t x, bool forward) const {
  if (forward) return forward_load(x);
  // Backward streams consume slices in reverse order within a microbatch.
  const std::int64_t slice = n_ - 1 - (x % n_);
  return model::CostModel::causal_kv_equiv(slice_len_, slice * slice_len_);
}

ExchangePlanner::Balance ExchangePlanner::balance_cohort(
    int device, std::int64_t stream, bool forward) const {
  Balance out;
  out.kv_tokens = load_of_stream(stream, forward);
  if (p_ <= 1) return out;

  // Pipeline tick: forwards flow first-to-last (device i processes stream
  // tick - i), backwards last-to-first (device i processes tick - (p-1-i)).
  const std::int64_t tick =
      forward ? stream + device : stream + (p_ - 1 - device);
  const std::int64_t total = static_cast<std::int64_t>(n_) * m_;

  struct Member {
    int device;
    double load;
  };
  std::vector<Member> cohort;
  cohort.reserve(static_cast<std::size_t>(p_));
  for (int i = 0; i < p_; ++i) {
    const std::int64_t x = forward ? tick - i : tick - (p_ - 1 - i);
    if (x < 0 || x >= total) continue;  // warm-up / cool-down: inactive
    cohort.push_back({i, load_of_stream(x, forward)});
  }
  if (cohort.size() < 2) return out;

  // Global-mean balancing with a two-pointer transfer plan: the heaviest
  // member sheds its surplus to the lightest members (a device may thus
  // exchange with several partners, as in Figure 8 where one light device
  // absorbs two KV blocks).
  std::stable_sort(cohort.begin(), cohort.end(),
                   [](const Member& a, const Member& b) {
                     return a.load < b.load;
                   });
  double mean = 0.0;
  for (const Member& m : cohort) mean += m.load;
  mean /= static_cast<double>(cohort.size());

  std::size_t lo = 0, hi = cohort.size() - 1;
  double deficit = mean - cohort[lo].load;
  double surplus = cohort[hi].load - mean;
  while (lo < hi) {
    const double moved = std::min(deficit, surplus);
    if (moved >= 1.0) {  // below one token: not worth exchanging
      if (cohort[hi].device == device) {
        out.moves.push_back({cohort[lo].device, moved});
      } else if (cohort[lo].device == device) {
        out.moves.push_back({cohort[hi].device, -moved});
      }
    }
    deficit -= moved;
    surplus -= moved;
    if (deficit <= 1e-9) {
      ++lo;
      if (lo < hi) deficit = mean - cohort[lo].load;
    }
    if (surplus <= 1e-9 && lo < hi) {
      --hi;
      if (lo < hi) surplus = cohort[hi].load - mean;
    }
  }
  if (out.moves.empty()) return out;
  if (adaptive_) {
    // All-or-nothing cohort decision, computed identically by every member:
    // skip the exchange when shipping the surplus costs more time than the
    // straggler it removes.
    double max_load = cohort.back().load;
    double surplus_tokens = 0.0;
    for (const Member& member : cohort) {
      surplus_tokens += std::max(0.0, member.load - mean);
    }
    // The byte payloads carry the per-stage layer factor; scale the saved
    // compute identically. Early launch hides roughly half the transfer
    // behind the previous pass, hence the 2x allowance.
    const double saved =
        static_cast<double>(layers_per_stage_) *
        (cost_.attn_block_time(static_cast<double>(slice_len_), max_load,
                               forward) -
         cost_.attn_block_time(static_cast<double>(slice_len_), mean,
                               forward));
    const double comm =
        (q_bytes_ + surplus_tokens * kv_bytes_per_token_) / link_bandwidth_ +
        link_latency_;
    if (comm > 2.0 * saved) {
      out.moves.clear();
      return out;  // keep the own (unbalanced) load
    }
  }
  out.kv_tokens = mean;
  return out;
}

double ExchangePlanner::balanced_kv_load(int device, std::int64_t stream,
                                         bool forward) const {
  return balance_cohort(device, stream, forward).kv_tokens;
}

ExchangePlanner::PassPlan ExchangePlanner::plan(int device,
                                                std::int64_t stream,
                                                bool forward) const {
  const Balance bal = balance_cohort(device, stream, forward);
  PassPlan plan;
  plan.attn_time = cost_.attn_block_time(static_cast<double>(slice_len_),
                                         bal.kv_tokens, forward);
  const double dir = forward ? 1.0 : 2.0;  // gradients roughly double it
  for (const Move& move : bal.moves) {
    Exchange ex;
    ex.partner = move.partner;
    if (move.kv_tokens > 0.0) {
      // Heavy side: sends Q + the excess KV, receives the partial output.
      ex.send_bytes = dir * (q_bytes_ + move.kv_tokens * kv_bytes_per_token_);
      ex.recv_bytes = dir * q_bytes_;
    } else {
      ex.send_bytes = dir * q_bytes_;
      ex.recv_bytes =
          dir * (q_bytes_ + (-move.kv_tokens) * kv_bytes_per_token_);
    }
    plan.exchanges.push_back(ex);
  }
  return plan;
}

double ExchangePlanner::forward_volume_per_microbatch(int device) const {
  double bytes = 0.0;
  // Streams of microbatch 1 (a steady-state microbatch when m >= 3).
  const int mb = std::min(1, m_ - 1);
  for (int s = 0; s < n_; ++s) {
    const std::int64_t stream = static_cast<std::int64_t>(mb) * n_ + s;
    for (const Exchange& ex : plan(device, stream, true).exchanges) {
      bytes += ex.send_bytes;
    }
  }
  return bytes;
}

}  // namespace slim::core
