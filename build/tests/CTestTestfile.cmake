# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_zbv[1]_include.cmake")
include("/root/repo/build/tests/test_slimpipe[1]_include.cmake")
include("/root/repo/build/tests/test_exchange[1]_include.cmake")
include("/root/repo/build/tests/test_numerics_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_numerics_attention[1]_include.cmake")
include("/root/repo/build/tests/test_numerics_layers[1]_include.cmake")
include("/root/repo/build/tests/test_numerics_model[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_context_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_moe[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_pareto[1]_include.cmake")
