// Unit tests for the discrete-event simulator: topology arithmetic, the
// dependency executor (chains, parallelism, FIFO resources, deadlock
// detection) and transfer timing.

#include <gtest/gtest.h>

#include "src/obs/json.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/graph.hpp"
#include "src/sim/topology.hpp"
#include "src/sim/trace.hpp"

namespace slim::sim {
namespace {

Topology two_nodes() {
  Topology topo;
  topo.num_nodes = 2;
  topo.gpus_per_node = 8;
  return topo;
}

TEST(TopologyTest, NodeMembership) {
  const Topology topo = two_nodes();
  EXPECT_EQ(topo.world_size(), 16);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(7), 0);
  EXPECT_EQ(topo.node_of(8), 1);
  EXPECT_TRUE(topo.same_node(0, 7));
  EXPECT_FALSE(topo.same_node(7, 8));
}

TEST(TopologyTest, BandwidthSelection) {
  const Topology topo = two_nodes();
  EXPECT_DOUBLE_EQ(topo.bandwidth(0, 1), topo.nvlink_bandwidth);
  EXPECT_DOUBLE_EQ(topo.bandwidth(0, 8), topo.nic_bandwidth);
}

TEST(TopologyTest, P2PTime) {
  const Topology topo = two_nodes();
  EXPECT_DOUBLE_EQ(topo.p2p_time(0, 0, 1e9), 0.0);
  EXPECT_NEAR(topo.p2p_time(0, 1, 400e9), topo.nvlink_latency + 1.0, 1e-9);
  EXPECT_NEAR(topo.p2p_time(0, 8, 50e9), topo.nic_latency + 1.0, 1e-9);
}

TEST(TopologyTest, RingCollective) {
  const Topology topo = two_nodes();
  EXPECT_DOUBLE_EQ(topo.ring_collective_time(1, 1e9, false), 0.0);
  // 4 ranks: 3 steps of bytes/4 each.
  const double t = topo.ring_collective_time(4, 4e9, false);
  EXPECT_NEAR(t, 3 * (topo.nvlink_latency + 1e9 / 400e9), 1e-9);
}

TEST(TopologyTest, AllToAll) {
  const Topology topo = two_nodes();
  EXPECT_DOUBLE_EQ(topo.all_to_all_time(1, 1e9, true), 0.0);
  const double t = topo.all_to_all_time(4, 4e9, true);
  EXPECT_NEAR(t, 3 * topo.nic_latency + 3e9 / 50e9, 1e-9);
}

TEST(TopologyTest, MakeCluster) {
  EXPECT_EQ(make_cluster(4).world_size(), 4);
  EXPECT_EQ(make_cluster(256).num_nodes, 32);
  EXPECT_THROW(make_cluster(12), std::logic_error);
}

TEST(ExecutorTest, SerialChainOnOneDevice) {
  OpGraph g(make_cluster(1));
  g.add_compute(0, 1.0, OpClass::Forward, {});
  g.add_compute(0, 2.0, OpClass::Forward, {});
  g.add_compute(0, 3.0, OpClass::Backward, {});
  const ExecResult r = execute(g);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_DOUBLE_EQ(r.timings[1].start, 1.0);
  EXPECT_DOUBLE_EQ(r.timings[2].start, 3.0);
  EXPECT_DOUBLE_EQ(r.bubble_fraction(0), 0.0);
}

TEST(ExecutorTest, IndependentDevicesRunInParallel) {
  OpGraph g(make_cluster(2));
  g.add_compute(0, 5.0, OpClass::Forward, {});
  g.add_compute(1, 3.0, OpClass::Forward, {});
  const ExecResult r = execute(g);
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
  EXPECT_DOUBLE_EQ(r.timings[1].start, 0.0);
  EXPECT_NEAR(r.bubble_fraction(1), 0.4, 1e-12);
}

TEST(ExecutorTest, CrossDeviceDependencyDelays) {
  OpGraph g(make_cluster(2));
  const OpId a = g.add_compute(0, 2.0, OpClass::Forward, {});
  g.add_compute(1, 1.0, OpClass::Forward, {a});
  const ExecResult r = execute(g);
  EXPECT_DOUBLE_EQ(r.timings[1].start, 2.0);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
}

TEST(ExecutorTest, TransferOccupiesChannel) {
  OpGraph g(make_cluster(2));
  const OpId a = g.add_compute(0, 1.0, OpClass::Forward, {});
  // 400e9 bytes over NVLink 400 GB/s = 1s + latency.
  const OpId x = g.add_transfer(0, 1, 400e9, OpClass::Send, {a});
  g.add_compute(1, 1.0, OpClass::Forward, {x});
  const ExecResult r = execute(g);
  EXPECT_NEAR(r.timings[2].start, 2.0 + g.topology().nvlink_latency, 1e-9);
}

TEST(ExecutorTest, ChannelFifoSerializes) {
  OpGraph g(make_cluster(2));
  const OpId a = g.add_compute(0, 0.0, OpClass::Forward, {});
  const OpId x1 = g.add_transfer(0, 1, 400e9, OpClass::Send, {a});
  const OpId x2 = g.add_transfer(0, 1, 400e9, OpClass::Send, {a});
  const ExecResult r = execute(g);
  EXPECT_GE(r.timings[x2].start, r.timings[x1].end);
}

TEST(ExecutorTest, LanesAreIndependent) {
  OpGraph g(make_cluster(2));
  const OpId a = g.add_compute(0, 0.0, OpClass::Forward, {});
  const OpId x1 = g.add_transfer(0, 1, 400e9, OpClass::Send, {a}, /*lane=*/0);
  const OpId x2 = g.add_transfer(0, 1, 400e9, OpClass::Send, {a}, /*lane=*/1);
  const ExecResult r = execute(g);
  EXPECT_DOUBLE_EQ(r.timings[x1].start, r.timings[x2].start);
}

TEST(ExecutorTest, DeadlockDetected) {
  OpGraph g(make_cluster(2));
  // Device 0 program: A then B. Device 1 program: C then D.
  // A depends on D, D depends on... make a cross cycle via program order:
  // A <- D and C <- B: A blocks B (program), B -> C dep, C blocks D
  // (program), D -> A dep: cycle.
  const OpId a = g.add_compute(0, 1.0, OpClass::Forward, {});
  const OpId b = g.add_compute(0, 1.0, OpClass::Forward, {});
  const OpId c = g.add_compute(1, 1.0, OpClass::Forward, {b});
  const OpId d = g.add_compute(1, 1.0, OpClass::Forward, {});
  g.op(a).deps.push_back(d);
  (void)c;
  EXPECT_THROW(execute(g), std::logic_error);
}

TEST(ExecutorTest, CommOpsDoNotCountAsComputeBusy) {
  OpGraph g(make_cluster(2));
  const OpId a = g.add_compute(0, 1.0, OpClass::Forward, {});
  g.add_transfer(0, 1, 400e9, OpClass::Send, {a});
  const ExecResult r = execute(g);
  EXPECT_DOUBLE_EQ(r.compute_busy[0], 1.0);
}

TEST(ExecutorTest, MeanBubble) {
  OpGraph g(make_cluster(2));
  g.add_compute(0, 4.0, OpClass::Forward, {});
  g.add_compute(1, 2.0, OpClass::Forward, {});
  const ExecResult r = execute(g);
  EXPECT_NEAR(r.mean_bubble_fraction(2), 0.25, 1e-12);
}

TEST(TraceTest, AsciiTimelineShape) {
  OpGraph g(make_cluster(2));
  const OpId a = g.add_compute(0, 1.0, OpClass::Forward, {});
  g.add_compute(1, 1.0, OpClass::Backward, {a});
  const ExecResult r = execute(g);
  AsciiTraceOptions opts;
  opts.width = 20;
  const std::string s = ascii_timeline(g, r, opts);
  EXPECT_NE(s.find("dev 0"), std::string::npos);
  EXPECT_NE(s.find("dev 1"), std::string::npos);
  EXPECT_NE(s.find('F'), std::string::npos);
  EXPECT_NE(s.find('B'), std::string::npos);
}

TEST(TraceTest, ChromeTraceIsJsonArray) {
  OpGraph g(make_cluster(1));
  g.add_compute(0, 1.0, OpClass::Forward, {});
  const ExecResult r = execute(g);
  const std::string json = obs::chrome_trace_json(g, r);
  // The exporter's output must parse as a JSON array of event objects with
  // at least one complete ("X") event.
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::parse(json, &doc, &error)) << error;
  ASSERT_TRUE(doc.is_array());
  bool saw_complete = false;
  for (const auto& event : doc.array()) {
    const obs::JsonValue* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->is_string() && ph->str() == "X") saw_complete = true;
  }
  EXPECT_TRUE(saw_complete);
}

TEST(GraphTest, MemDeltaAttached) {
  OpGraph g(make_cluster(1));
  const OpId a = g.add_compute(0, 1.0, OpClass::Forward, {});
  g.add_mem(a, {0, 1, 100.0, false});
  EXPECT_EQ(g.op(a).mem.size(), 1u);
  EXPECT_DOUBLE_EQ(g.op(a).mem[0].bytes, 100.0);
}

TEST(GraphTest, OpIdRangeChecked) {
  OpGraph g(make_cluster(1));
  EXPECT_THROW(g.op(0), std::logic_error);
  EXPECT_THROW(g.op(-1), std::logic_error);
}

}  // namespace
}  // namespace slim::sim
