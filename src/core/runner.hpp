#pragma once

// Public façade: run any pipeline scheme on a spec and compare schemes.
// This is the main entry point a downstream user of the library calls.

#include <string>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/sched/schedule.hpp"

namespace slim::core {

enum class Scheme : int {
  GPipe,
  TeraPipe,
  OneF1B,
  Interleaved1F1B,
  ZBV,
  VHalf,
  VMin,
  SlimPipe,
};

const char* scheme_name(Scheme scheme);
std::vector<Scheme> all_schemes();

/// Runs one simulated training iteration under the given scheme.
/// Scheme-specific knobs on the spec (layout, retain_kv, ...) are
/// normalized by the scheme's runner; schedule-relevant ones (p, v, n, m,
/// policy, vocab_parallel, context_exchange) are honored where the scheme
/// supports them.
sched::ScheduleResult run_scheme(Scheme scheme, sched::PipelineSpec spec,
                                 bool want_timeline = false);

/// Runs one simulated iteration under the given scheme with a fault plan
/// applied: straggler/link faults degrade op durations before execution,
/// device crashes add checkpoint-restart recovery cost afterwards. The
/// result's iteration_time is the degraded total and the fault_* fields
/// break out the overheads; `report`, when set, collects the structured
/// fault events.
sched::ScheduleResult run_scheme_faulted(Scheme scheme,
                                         sched::PipelineSpec spec,
                                         const fault::FaultPlan& faults,
                                         fault::FaultReport* report = nullptr,
                                         bool want_timeline = false);

/// A scheme's schedule without running the simulator: the normalized spec,
/// the generated per-device programs and the scheme's declared cap on
/// simultaneously-live activation units (one unit = one (microbatch, slice,
/// chunk) forward; Table 2 bounds). Input to the static analysis passes.
struct SchedulePlan {
  sched::PipelineSpec spec;
  std::vector<sched::DeviceProgram> programs;
  double max_inflight_units = 0.0;
};

/// Normalizes the spec exactly like the scheme's runner and generates its
/// programs. Throws (SLIM_CHECK) on specs the scheme cannot schedule.
SchedulePlan plan_scheme(Scheme scheme, sched::PipelineSpec spec);

}  // namespace slim::core
