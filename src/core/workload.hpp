#pragma once

// Synthetic long-context workload generation (ROADMAP open item 2).
//
// Real long-context traffic is heavily length-skewed (InfiniPipe,
// PAPERS.md): most documents are short, a heavy tail is very long. This
// module samples document-length mixes (uniform / zipf / bimodal), packs
// documents into fixed-capacity microbatches, and derives per-microbatch
// SliceLayouts — the inputs the elastic pipeline substrates consume.
// Everything is deterministic in the seed (util::Rng).

#include <cstdint>
#include <vector>

#include "src/core/slice_layout.hpp"

namespace slim::core {

enum class DocMix : std::uint8_t {
  Uniform,  // lengths uniform in [min_len, max_len]
  Zipf,     // bounded power law: mass near min_len, heavy tail to max_len
  Bimodal,  // min_len with probability 1 - long_fraction, else max_len
};

struct WorkloadSpec {
  DocMix mix = DocMix::Uniform;
  std::int64_t min_len = 1;    // shortest document, tokens
  std::int64_t max_len = 1;    // longest document, tokens
  double zipf_exponent = 1.2;  // power-law exponent (Zipf mix)
  double long_fraction = 0.1;  // probability of a max_len doc (Bimodal mix)
  std::uint64_t seed = 0;
};

/// Samples `count` document lengths from the mix. Deterministic in
/// spec.seed across platforms.
std::vector<std::int64_t> sample_doc_lengths(const WorkloadSpec& spec,
                                             int count);

struct PackedMicrobatch {
  std::vector<std::int64_t> doc_lens;  // packed documents, in pack order
  std::int64_t tokens = 0;             // sum of doc_lens
};

/// Documents packed into m microbatches. Conservation invariant:
/// packed_tokens + sum(dropped) == sum(input lengths).
struct PackedBatch {
  std::vector<PackedMicrobatch> microbatches;  // exactly m entries
  std::vector<std::int64_t> dropped;           // docs that fit nowhere
  std::int64_t packed_tokens = 0;

  std::vector<std::int64_t> mb_tokens() const;
};

/// Packs documents into m microbatches of at most `capacity` tokens each:
/// longest document first into the least-loaded microbatch that still has
/// room (LPT), so microbatch totals come out balanced. Documents longer
/// than the capacity, or arriving after every microbatch is full, land in
/// `dropped` — never silently truncated.
PackedBatch pack_documents(const std::vector<std::int64_t>& doc_lens, int m,
                           std::int64_t capacity);

/// Token-uniform layouts for per-microbatch totals: n slices each,
/// boundaries in multiples of `align`, remainder to the first slices.
std::vector<SliceLayout> uniform_layouts(
    const std::vector<std::int64_t>& mb_tokens, int n,
    std::int64_t align = 1);

}  // namespace slim::core
