#pragma once

// Unified tracing model shared by both execution substrates.
//
// A Trace is a flat collection of spans (timed intervals on a track),
// instants (point markers: faults, commits, recoveries), counter samples
// (queue depths) and flow points (cross-track send→recv links). The
// simulator converts an executed OpGraph into a Trace (trace_from_sim); the
// threaded runtime fills one live through the thread-safe Recorder. One
// exporter (chrome_trace_json) renders either to Chrome/catapult JSON for
// chrome://tracing, with flow arrows between devices and fault/recovery
// markers on the timeline.
//
// Track convention: pipeline device/stage d uses track d; auxiliary
// resources (communication channels, NICs, PCIe engines) use
// kAuxTrackBase + resource id so they never collide with compute rows.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/obs/clock.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/graph.hpp"

namespace slim::obs {

inline constexpr int kAuxTrackBase = 1000;

/// Event categories (Chrome "cat" field; also used by the metrics layer to
/// classify spans).
inline constexpr const char* kCatCompute = "compute";
inline constexpr const char* kCatComm = "comm";
inline constexpr const char* kCatHost = "host";
inline constexpr const char* kCatFault = "fault";
inline constexpr const char* kCatCommit = "commit";

struct TraceSpan {
  int track = 0;
  double start = 0.0;  // seconds
  double end = 0.0;
  std::string name;
  std::string cat;
  std::int32_t microbatch = -1;
  std::int32_t slice = -1;
  std::int32_t stage = -1;
};

struct TraceInstant {
  int track = 0;
  double ts = 0.0;
  std::string name;
  std::string cat;
  std::string detail;  // exported as args.detail when non-empty
};

struct TraceCounter {
  int track = 0;
  double ts = 0.0;
  std::string name;
  double value = 0.0;
};

/// One endpoint of a flow arrow; a flow id must appear with begin=true
/// exactly once and begin=false at least once for the arrow to render.
struct TraceFlowPoint {
  std::int64_t id = -1;
  int track = 0;
  double ts = 0.0;
  bool begin = true;
  std::string name;
};

struct Trace {
  std::map<int, std::string> track_names;
  // Multi-process runs map each track to the OS process that produced it so
  // the Chrome exporter renders real per-process groups (Perfetto collapses
  // everything sharing a pid into one process lane). Tracks without an entry
  // default to pid 0 — the recording (supervisor) process.
  std::map<int, std::int64_t> track_pids;
  std::map<std::int64_t, std::string> process_names;
  std::vector<TraceSpan> spans;
  std::vector<TraceInstant> instants;
  std::vector<TraceCounter> counters;
  std::vector<TraceFlowPoint> flows;

  /// Chrome pid for a track (0 unless set_track_pid said otherwise).
  std::int64_t pid_of(int track) const {
    auto it = track_pids.find(track);
    return it == track_pids.end() ? 0 : it->second;
  }

  bool empty() const {
    return spans.empty() && instants.empty() && counters.empty() &&
           flows.empty();
  }
};

/// Thread-safe event recorder for the threaded runtime. All mutations take
/// one mutex; callers gate every call on a plain pointer check so a disabled
/// trace costs nothing. Timestamps are seconds since construction on the
/// MonoClock (see obs/clock.hpp — this epoch is THE run epoch; worker-process
/// timestamps are re-based onto it via ClockAligner), matching the
/// simulator's zero-based timeline.
class Recorder {
 public:
  Recorder();

  /// Seconds elapsed since the recorder was constructed.
  double now() const;

  void set_track_name(int track, std::string name);
  void set_track_pid(int track, std::int64_t pid);
  void set_process_name(std::int64_t pid, std::string name);
  void span(int track, std::string name, std::string cat, double start,
            double end, std::int32_t microbatch = -1, std::int32_t slice = -1,
            std::int32_t stage = -1);
  void instant(int track, std::string name, std::string cat,
               std::string detail = {});
  void counter(int track, std::string name, double value);

  /// Opens a flow arrow at (track, now); returns the id the receiving side
  /// passes to end_flow. Ids are unique per recorder.
  std::int64_t begin_flow(int track, std::string name);
  void end_flow(std::int64_t id, int track, double ts);

  /// Adds a flow endpoint with a caller-chosen id and timestamp. Used by the
  /// multi-process supervisor, where both endpoints derive the same id
  /// deterministically (dist::wire_flow_id) without coordinating — explicit
  /// ids start at a high base so they never collide with begin_flow's.
  void flow_point(std::int64_t id, int track, double ts, bool begin,
                  std::string name);

  /// Moves the accumulated trace out (the recorder keeps running).
  Trace take();

  /// Copies the accumulated trace (e.g. to export mid-run).
  Trace snapshot() const;

 private:
  mutable std::mutex mutex_;
  Trace trace_;
  std::atomic<std::int64_t> next_flow_{0};
  MonoClock::time_point epoch_;
};

/// Converts an executed simulator graph into a Trace: compute ops become
/// spans on their device track, transfers become spans on per-resource
/// channel/NIC tracks plus flow arrows from the transfer to every dependent
/// op on the receiving device, PCIe copies land on host tracks.
Trace trace_from_sim(const sim::OpGraph& graph, const sim::ExecResult& result);

/// Appends fault/recovery events as instant markers. Events carry the
/// simulated time where the substrate recorded one (crashes); events without
/// a meaningful time (plan-wide stragglers) are pinned at t=0 on the
/// affected device's track.
void append_fault_events(Trace& trace,
                         const std::vector<fault::FaultEvent>& events);

/// Chrome trace event JSON ("catapult" format). Every string goes through
/// json_escape; spans emit "X" events with mb/slice/stage args, instants
/// "i", counters "C", flows "s"/"f", track names thread_name metadata and
/// process names process_name metadata. Every event carries the pid of the
/// process that produced its track (Trace::pid_of), so multi-process runs
/// render as separate process groups in Perfetto.
std::string chrome_trace_json(const Trace& trace);

/// Convenience: trace_from_sim + chrome_trace_json (the successor of the
/// old sim::chrome_trace_json).
std::string chrome_trace_json(const sim::OpGraph& graph,
                              const sim::ExecResult& result);

}  // namespace slim::obs
