#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/sched/builder.hpp"
#include "src/sched/schedule.hpp"

namespace slimbench {
namespace {

// Process-wide report, flushed once via atexit. Bench binaries call
// open_report() as the first line of main(); google-benchmark's own exit
// path then triggers the write without the bench needing a shutdown hook.
slim::obs::BenchReport g_report;
bool g_report_open = false;

void flush_report() {
  if (!g_report_open) return;
  const char* dir = std::getenv("SLIMPIPE_RESULTS_DIR");
  const std::string path = std::string(dir != nullptr ? dir : "results") +
                           "/bench_" + g_report.name + ".json";
  if (!slim::obs::write_report(g_report, path)) {
    std::fprintf(stderr, "bench report write failed: %s\n", path.c_str());
    return;
  }
  std::printf("\n[report] %s\n", path.c_str());
}

// Banner fields accumulate across sections (some benches reproduce two
// figures in one binary).
void append_field(std::string& field, const std::string& text) {
  if (!field.empty()) field += " | ";
  field += text;
}

}  // namespace

slim::sched::PipelineSpec base_spec(const slim::model::TransformerConfig& cfg,
                                    std::int64_t t, int p, std::int64_t seq,
                                    int m) {
  slim::sched::PipelineSpec spec;
  spec.cfg = cfg;
  spec.gpu = slim::model::hopper80();
  spec.shard = {t, 1, 1, 8};
  spec.policy = slim::model::CheckpointPolicy::None;
  spec.p = p;
  spec.m = m;
  spec.seq = seq;
  return spec;
}

void open_report(const std::string& name) {
  g_report.name = name;
  if (!g_report_open) {
    g_report_open = true;
    std::atexit(flush_report);
  }
}

void print_banner(const std::string& artifact, const std::string& setup,
                  const std::string& paper_expectation) {
  // Benches compile thousands of schedules over their grids; skip the
  // static analysis passes unless explicitly requested (SLIMPIPE_LINT=1).
  const char* lint = std::getenv("SLIMPIPE_LINT");
  slim::sched::set_compile_lint(lint != nullptr && lint[0] == '1');
  std::printf("\n================================================================\n");
  std::printf("Reproducing: %s\n", artifact.c_str());
  std::printf("Setup:       %s\n", setup.c_str());
  std::printf("Paper shape: %s\n", paper_expectation.c_str());
  std::printf("================================================================\n");
  if (g_report_open) {
    append_field(g_report.artifact, artifact);
    append_field(g_report.setup, setup);
    append_field(g_report.expectation, paper_expectation);
  }
}

void print_table(const std::string& title, const slim::Table& table) {
  if (!title.empty()) std::printf("%s\n", title.c_str());
  std::printf("%s\n", table.to_string().c_str());
  if (g_report_open) g_report.add_series(title, table);
}

void add_run(const std::string& label,
             const slim::sched::ScheduleResult& result) {
  if (g_report_open) {
    g_report.runs.push_back(slim::sched::to_run_record(result, label));
  }
}

std::string status_cell(const slim::sched::ScheduleResult& result) {
  return result.oom ? "OOM" : slim::format_percent(result.mfu);
}

}  // namespace slimbench
