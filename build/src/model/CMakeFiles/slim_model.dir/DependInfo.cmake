
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/activation.cpp" "src/model/CMakeFiles/slim_model.dir/activation.cpp.o" "gcc" "src/model/CMakeFiles/slim_model.dir/activation.cpp.o.d"
  "/root/repo/src/model/flops.cpp" "src/model/CMakeFiles/slim_model.dir/flops.cpp.o" "gcc" "src/model/CMakeFiles/slim_model.dir/flops.cpp.o.d"
  "/root/repo/src/model/hardware.cpp" "src/model/CMakeFiles/slim_model.dir/hardware.cpp.o" "gcc" "src/model/CMakeFiles/slim_model.dir/hardware.cpp.o.d"
  "/root/repo/src/model/transformer.cpp" "src/model/CMakeFiles/slim_model.dir/transformer.cpp.o" "gcc" "src/model/CMakeFiles/slim_model.dir/transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
