# Empty compiler generated dependencies file for bench_eq2_exchange_volume.
# This may be replaced when dependencies are built.
