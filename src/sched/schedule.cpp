#include "src/sched/schedule.hpp"

#include <sstream>

#include "src/util/logging.hpp"
#include "src/util/math.hpp"

namespace slim::sched {

int StageLayout::device_of(int stage) const {
  SLIM_CHECK(stage >= 0 && stage < num_stages(), "stage out of range");
  switch (kind) {
    case StageLayoutKind::Sequential:
      return stage;
    case StageLayoutKind::Interleaved:
      return stage % p;
    case StageLayoutKind::VShape:
      // Down the V then back up: stages 0..p-1 map to devices 0..p-1,
      // stages p..2p-1 map to devices p-1..0.
      return stage < p ? stage : 2 * p - 1 - stage;
  }
  return 0;
}

int StageLayout::chunk_of(int stage) const {
  switch (kind) {
    case StageLayoutKind::Sequential:
      return 0;
    case StageLayoutKind::Interleaved:
      return stage / p;
    case StageLayoutKind::VShape:
      return stage < p ? 0 : 1;
  }
  return 0;
}

int StageLayout::stage_of(int device, int chunk) const {
  SLIM_CHECK(device >= 0 && device < p && chunk >= 0 && chunk < v,
             "device/chunk out of range");
  switch (kind) {
    case StageLayoutKind::Sequential:
      return device;
    case StageLayoutKind::Interleaved:
      return chunk * p + device;
    case StageLayoutKind::VShape:
      return chunk == 0 ? device : 2 * p - 1 - device;
  }
  return 0;
}

core::SliceLayout PipelineSpec::layout_of(int mb) const {
  if (layouts.empty()) {
    return core::SliceLayout::uniform(seq, n, shard.c > 1 ? shard.c : 1);
  }
  SLIM_CHECK(mb >= 0 && mb < static_cast<int>(layouts.size()),
             "microbatch out of range");
  return layouts[mb];
}

std::vector<core::SliceLayout> PipelineSpec::resolved_layouts() const {
  if (!layouts.empty()) return layouts;
  return std::vector<core::SliceLayout>(static_cast<std::size_t>(m),
                                        layout_of(0));
}

std::int64_t PipelineSpec::seq_of(int mb) const {
  return layouts.empty() ? seq : layouts[mb].seq();
}

std::int64_t PipelineSpec::total_tokens() const {
  if (layouts.empty()) return seq * static_cast<std::int64_t>(m);
  std::int64_t total = 0;
  for (const auto& layout : layouts) total += layout.seq();
  return total;
}

bool PipelineSpec::uniform_slices() const {
  if (layouts.empty()) {
    const std::int64_t align = shard.c > 1 ? shard.c : 1;
    if (seq <= 0 || n < 1 || seq % align != 0) return false;
    const std::int64_t units = seq / align;
    return units >= n && units % n == 0;
  }
  for (const auto& layout : layouts) {
    if (!(layout == layouts.front()) || !layout.is_uniform()) return false;
  }
  return true;
}

std::string PipelineSpec::validate() const {
  std::ostringstream err;
  if (p < 1 || v < 1 || m < 1 || n < 1) {
    err << "p, v, m, n must be >= 1; ";
  }
  if (layout == StageLayoutKind::Sequential && v != 1) {
    err << "sequential layout requires v == 1; ";
  }
  if (layout == StageLayoutKind::VShape && v != 2) {
    err << "V-shape layout requires v == 2; ";
  }
  if (cfg.layers < static_cast<std::int64_t>(p * v)) {
    err << "fewer layers (" << cfg.layers << ") than stages (" << p * v
        << "); ";
  }
  if (seq <= 0) {
    err << "sequence length must be positive; ";
  }
  if (n > 1 && n % p != 0) {
    err << "n must be a multiple of p (slice rounds, paper 4.1.2); ";
  }
  const std::int64_t align = shard.c > 1 ? shard.c : 1;
  if (layouts.empty()) {
    if (seq > 0 && seq % align != 0) {
      err << "sequence not divisible by context parallel size; ";
    } else if (seq > 0 && seq / align < n) {
      err << "fewer CP-aligned token blocks than slices; ";
    }
  } else {
    if (static_cast<int>(layouts.size()) != m) {
      err << "slice layouts must cover all m microbatches; ";
    }
    for (const auto& layout : layouts) {
      if (layout.slices() != n) {
        err << "every slice layout must have exactly n slices; ";
        break;
      }
    }
    if (align > 1) {
      for (const auto& layout : layouts) {
        bool aligned = true;
        for (int i = 0; i < layout.slices(); ++i) {
          aligned = aligned && layout.len(i) % align == 0;
        }
        if (!aligned) {
          err << "slice lengths not divisible by context parallel size; ";
          break;
        }
      }
    }
  }
  if (context_exchange && n == 1) {
    err << "context exchange requires slicing (n > 1); ";
  }
  // Derived (empty) layouts stay legal with the exchange planner even when
  // seq % n != 0 — the remainder slices differ by one alignment unit, which
  // the planner's closed-form model absorbs. Custom layouts must be uniform.
  if (context_exchange && n > 1 && !layouts.empty() && !uniform_slices()) {
    err << "context exchange requires uniform equal-length slices; ";
  }
  return err.str();
}

obs::RunRecord to_run_record(const ScheduleResult& result,
                             const std::string& label) {
  obs::RunRecord run;
  run.label = label;
  run.iteration_time = result.iteration_time;
  run.bubble_fraction = result.bubble_fraction;
  run.mfu = result.mfu;
  run.peak_memory = result.peak_memory;
  run.oom = result.oom;
  run.metrics = result.metrics;
  return run;
}

}  // namespace slim::sched
