// Figure 11: how the number of slices n affects training efficiency.
// Fine-grained slicing first helps (fewer bubbles) then hurts (arithmetic
// intensity of short slices collapses); the turnover point moves right as
// the context grows.

#include "bench_common.hpp"

using namespace slim;

namespace {

sched::ScheduleResult run(std::int64_t seq, int n) {
  auto spec = slimbench::base_spec(model::llama13b(), 8, 4, seq, 2);
  spec.policy = model::CheckpointPolicy::Full;
  spec.v = 5;
  spec.n = n;
  spec.vocab_parallel = true;
  spec.context_exchange = true;
  return core::run_scheme(core::Scheme::SlimPipe, spec);
}

}  // namespace

static void BM_Figure11(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(256 * 1024, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_Figure11)->Arg(4)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("fig11_slice_length");
  slimbench::print_banner(
      "Figure 11 — MFU vs number of slices per sequence",
      "Llama 13B, t=8, p=4, v=5, m=2, full checkpointing, contexts "
      "128K/256K/512K, n from p to 8p",
      "MFU rises then falls as n grows; the 128K curve drops sharply after "
      "n = 2p while 512K stays high out to n = 8p");

  Table table({"n", "slice @128K", "MFU @128K", "MFU @256K", "MFU @512K"});
  for (int mult : {1, 2, 4, 8}) {
    const int n = 4 * mult;
    std::vector<std::string> row = {fmt(static_cast<std::int64_t>(n))};
    row.push_back(format_context(128 * 1024 / n));
    for (std::int64_t seq : {128 * 1024, 256 * 1024, 512 * 1024}) {
      const auto r = run(seq, n);
      row.push_back(slimbench::status_cell(r));
    }
    table.add_row(row);
  }
  slimbench::print_table("slice length sensitivity", table);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
