#pragma once

// Applies a FaultPlan to the discrete-event simulator.
//
// Straggler and link faults rescale op durations *before* execution; crash
// faults are accounted *after* execution as checkpoint-restart recovery
// cost: when a device fails at its k-th compute op, every in-flight pass
// since the iteration boundary is lost, the stage respawns after the
// plan's restart cost, and the whole iteration replays. The effective
// (degraded) iteration time is therefore
//
//   makespan(with stragglers) + sum over crashes (crash_time + restart).

#include "src/fault/fault_plan.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/graph.hpp"

namespace slim::fault {

/// Rescales durations of matching ops in place. Straggler windows index
/// each device's op sequence in program order (compute ops only for
/// compute filters; comm ops count on the sender). Jitter draws from an
/// Rng keyed by (plan.seed, device, op index), so the transformation is a
/// pure function of (graph, plan). Returns the extra seconds injected and
/// records one event per affected device into `report` when non-null.
double apply_to_graph(sim::OpGraph& graph, const FaultPlan& plan,
                      FaultReport* report);

/// Checkpoint-restart accounting over an executed graph: for every crash
/// in the plan, the lost in-flight work (time from the iteration start to
/// the crashing op's retirement) plus the restart cost. `at_op` indexes
/// the device's compute ops and clamps to the last one. Returns the total
/// overhead in seconds and records Crash events into `report`.
double recovery_overhead(const sim::OpGraph& graph,
                         const sim::ExecResult& exec, const FaultPlan& plan,
                         FaultReport* report);

}  // namespace slim::fault
