
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_numerics_model.cpp" "tests/CMakeFiles/test_numerics_model.dir/test_numerics_model.cpp.o" "gcc" "tests/CMakeFiles/test_numerics_model.dir/test_numerics_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/slim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/slim_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/slim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/slim_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/slim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/slim_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/slim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
