#pragma once

// Hybrid parallelism configuration: (t, c, d, e, p) plus the scheme-level
// knobs (v, n, checkpoint policy, offload). World size = t * c * d * p;
// expert parallelism reuses the context/data dimensions (e | c * d), as in
// the paper's Table 4 configurations.

#include <cstdint>
#include <string>

#include "src/core/runner.hpp"
#include "src/memory/offload.hpp"
#include "src/model/activation.hpp"
#include "src/model/hardware.hpp"
#include "src/model/transformer.hpp"
#include "src/sched/schedule.hpp"

namespace slim::parallel {

struct HybridConfig {
  std::int64_t t = 1;  // tensor parallel (with sequence parallel)
  std::int64_t c = 1;  // context parallel
  std::int64_t d = 1;  // data parallel
  std::int64_t e = 1;  // expert parallel
  std::int64_t p = 1;  // pipeline parallel
  int v = 1;           // stage chunks per pipeline device
  int n = 1;           // slices per sequence (SlimPipe / TeraPipe)
  model::CheckpointPolicy policy = model::CheckpointPolicy::None;
  double offload_ratio = 0.0;
  core::Scheme scheme = core::Scheme::SlimPipe;

  std::int64_t world() const { return t * c * d * p; }

  /// Microbatches per pipeline (sequences per iteration per DP replica).
  std::int64_t microbatches(std::int64_t seq, std::int64_t tokens_per_iter) const {
    if (seq <= 0 || tokens_per_iter % seq != 0) return 0;
    const std::int64_t batch = tokens_per_iter / seq;
    if (batch % d != 0) return 0;
    return batch / d;
  }

  std::string describe() const;
};

/// Structural validity (divisibility, head limits, scheme constraints).
/// Returns an error string, or empty when valid.
std::string validate(const HybridConfig& cfg,
                     const model::TransformerConfig& model, int num_gpus,
                     std::int64_t seq, std::int64_t tokens_per_iter);

/// Builds the pipeline spec this configuration describes.
sched::PipelineSpec make_spec(const HybridConfig& cfg,
                              const model::TransformerConfig& model,
                              const model::GpuSpec& gpu, std::int64_t seq,
                              std::int64_t tokens_per_iter);

}  // namespace slim::parallel
