#pragma once

// Analysis pass 2 — graph lint.
//
// Runs on a built sim::OpGraph and verifies the invariants the executor and
// the memory tracker otherwise only discover dynamically:
//
//   graph-dep-range       dependency op ids out of range / self-deps
//   graph-resource-order  op/program table inconsistency (an op missing from
//                         its resource's program, listed twice, or recorded
//                         out of insertion order)
//   graph-acyclic         dependency + program-order cycle; the finding
//                         reports the cycle path, not just its existence
//   graph-unmatched-send  a P2P transfer no op ever waits on (the payload
//                         would never be received)
//   graph-channel-fifo    per directed channel, receivers must consume
//                         transfers in FIFO delivery order (error: the static
//                         form of the runtime's receive_for deadlock probe);
//                         senders should produce them in posting order
//                         (warning: an inversion only adds latency)
//   graph-mem-balance     per (device, category), the summed MemDelta bytes
//                         of an iteration must return to zero
//   graph-mem-negative    no dependency-consistent replay order may drive a
//                         (device, category) balance below zero
//   graph-vocab-ops       explicit VocabForward/VocabBackward ops appear iff
//                         the spec does NOT use vocabulary parallelism (the
//                         parallel form folds them into every device's
//                         forward/backward), and only on the last stage's
//                         device (spec overload only)

#include <vector>

#include "src/analysis/findings.hpp"
#include "src/sched/schedule.hpp"
#include "src/sim/graph.hpp"

namespace slim::analysis {

struct GraphLintOptions {
  /// Absolute slack, in bytes, for the per-(device, category) conservation
  /// rule (covers float cancellation of ZB-V's split frees).
  double balance_tolerance_bytes = 16.0;
  /// Cap on reported findings per rule, to keep a badly broken graph's
  /// report readable.
  std::size_t max_findings_per_rule = 8;
};

/// Structural rules only (no spec required).
std::vector<Finding> check_graph(const sim::OpGraph& graph,
                                 const GraphLintOptions& options = {});

/// Structural rules plus the spec-dependent vocabulary-op rule.
std::vector<Finding> check_graph(const sim::OpGraph& graph,
                                 const sched::PipelineSpec& spec,
                                 const GraphLintOptions& options = {});

}  // namespace slim::analysis
