# Empty dependencies file for slim_runtime.
# This may be replaced when dependencies are built.
