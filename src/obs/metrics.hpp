#pragma once

// Metrics registry: one per-stage/per-device record shape (StageMetrics)
// computable from BOTH execution substrates — from an executed simulator
// OpGraph (metrics_from_sim) and from a runtime Trace plus live probes
// (metrics_from_trace). sched::ScheduleResult and rt::PipelineStats both
// carry a RunMetrics so the same analysis/report code consumes either.

#include <string>
#include <vector>

#include "src/memory/tracker.hpp"
#include "src/obs/json.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/graph.hpp"

namespace slim::obs {

/// Per-device (== per-pipeline-stage) breakdown for one iteration.
/// Discrete fields (peak_live_slices, p2p_messages) are schedule-shape
/// invariants and match exactly between substrates; timing fields follow
/// each substrate's own clock (cost model vs wall clock).
struct StageMetrics {
  int device = 0;

  double compute_seconds = 0.0;       // busy on fwd/bwd/recompute/vocab/optim
  double comm_seconds = 0.0;          // p2p/exchange/collective occupancy
  double idle_seconds = 0.0;          // makespan - compute (the bubble)
  double bubble_fraction = 0.0;       // idle / makespan

  int peak_live_slices = 0;           // paper Eq.1 bound: n + 2(p-1-r)
  std::int64_t p2p_messages = 0;      // cross-device messages sent
  double p2p_bytes = 0.0;             // payload volume sent
  double exchange_bytes = 0.0;        // context-exchange share of p2p_bytes

  double blocked_recv_seconds = 0.0;  // runtime: time blocked inside recv
  int peak_queue_depth = 0;           // runtime: inbox high-water mark
  double peak_memory_bytes = 0.0;     // memory high-water (sim replay)

  // Transport-level counters (filled by both runtime backends so the two
  // substrates stay comparable: wire frames over sockets for src/dist,
  // channel messages for the threaded runtime; zero in the simulator).
  std::int64_t frames_sent = 0;
  std::int64_t frames_recv = 0;
  double bytes_recv = 0.0;            // payload volume received
  std::int64_t crc_rejects = 0;       // corrupt frames discarded (dist only)
  std::int64_t send_retries = 0;      // injected-drop retransmits (dist only)

  // Cross-process clock alignment (dist only; see obs/clock.hpp). Offset is
  // the worker-clock minus run-clock estimate of the minimum-rtt ping/pong
  // sample; uncertainty is that sample's rtt/2; samples counts accepted
  // round trips.
  double clock_offset_seconds = 0.0;
  double clock_uncertainty_seconds = 0.0;
  std::int64_t clock_samples = 0;

  // Runtime-measured arena high-water marks, one slot per mem::Category
  // (empty when arenas were not enabled). measured_peak_total is the true
  // concurrent high-water across all of the stage's arenas, not the sum of
  // per-category peaks.
  std::vector<double> measured_peak_bytes;
  double measured_peak_total = 0.0;
};

struct RunMetrics {
  std::string substrate;  // "sim" or "runtime"
  std::string scheme;     // schedule scheme label
  double makespan = 0.0;  // seconds (simulated or wall-clock)
  std::vector<StageMetrics> stages;

  double mean_bubble_fraction() const;
  int max_peak_live_slices() const;
  std::int64_t total_p2p_messages() const;
  double total_p2p_bytes() const;
};

/// Computes per-device metrics from an executed simulator graph. Comm
/// seconds attribute channel occupancy to the *sending* device. Peak live
/// slices replays forward-start (+1) / first-backward-end (-1) per
/// (device, microbatch, slice). `memory` optionally supplies the per-device
/// high-water marks from a mem::replay_memory pass.
RunMetrics metrics_from_sim(const sim::OpGraph& graph,
                            const sim::ExecResult& result, int num_devices,
                            const mem::MemoryReport* memory = nullptr);

/// Computes per-device metrics from a recorded Trace (runtime substrate):
/// span cats map to compute/comm buckets; makespan is the last span end.
/// Probe-only fields (queue depth, blocked time, message counts) must be
/// filled by the caller from its live probes.
RunMetrics metrics_from_trace(const Trace& trace, int num_devices);

JsonValue run_metrics_to_json(const RunMetrics& metrics);
bool run_metrics_from_json(const JsonValue& value, RunMetrics* out);

}  // namespace slim::obs
