file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_ultra_context.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table4_ultra_context.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table4_ultra_context.dir/bench_table4_ultra_context.cpp.o"
  "CMakeFiles/bench_table4_ultra_context.dir/bench_table4_ultra_context.cpp.o.d"
  "bench_table4_ultra_context"
  "bench_table4_ultra_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_ultra_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
