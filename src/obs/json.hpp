#pragma once

// Minimal JSON support for the observability layer.
//
// Two halves: escaping for every place the codebase hand-emits JSON (trace
// exporter, bench reporter, metrics reports), and a small recursive-descent
// parser used by slimpipe_report and the trace/report validators. The parser
// covers the full JSON grammar (objects, arrays, strings with escapes,
// numbers, literals) — enough to round-trip everything we emit and to reject
// structurally broken output in tests.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace slim::obs {

/// Escapes the *content* of a JSON string: quotes, backslashes and control
/// characters (the latter as \uXXXX or the short forms \n \t \r \b \f).
/// Does not add surrounding quotes.
std::string json_escape(std::string_view text);

/// `"` + json_escape(text) + `"` — the form callers almost always want.
std::string json_quote(std::string_view text);

/// Formats a double as a valid JSON number (non-finite values, which JSON
/// cannot represent, are clamped to 0).
std::string json_number(double value);

/// Parsed JSON document node. Object member order is preserved.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Convenience accessors with defaults (for tolerant report loading).
  std::string string_or(std::string_view key, std::string fallback) const;
  double number_or(std::string_view key, double fallback) const;

  /// Parses `text`; on failure returns false and fills `error` with a
  /// message including the byte offset.
  static bool parse(std::string_view text, JsonValue* out, std::string* error);

  // Builders (used by the metrics/report emitters and test fixtures).
  static JsonValue make_string(std::string s);
  static JsonValue make_number(double v);
  static JsonValue make_bool(bool v);
  static JsonValue make_array();
  static JsonValue make_object();

  /// Appends to an array (converts a Null node to an array first).
  void push_back(JsonValue v);

  /// Sets an object member, replacing an existing key (converts a Null node
  /// to an object first). Insertion order is preserved.
  void set(std::string_view key, JsonValue v);

  /// Serializes this value to compact JSON (strings escaped, numbers via
  /// json_number). `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace slim::obs
