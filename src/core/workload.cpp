#include "src/core/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/logging.hpp"
#include "src/util/rng.hpp"

namespace slim::core {

namespace {

std::int64_t clamp_len(double x, std::int64_t lo, std::int64_t hi) {
  const auto rounded = static_cast<std::int64_t>(std::llround(x));
  return std::clamp(rounded, lo, hi);
}

// Bounded Pareto inverse CDF on [lo, hi] with exponent alpha: heavy mass
// near lo, polynomial tail out to hi.
std::int64_t sample_bounded_pareto(double u, std::int64_t lo, std::int64_t hi,
                                   double alpha) {
  const double la = std::pow(static_cast<double>(lo), alpha);
  const double ha = std::pow(static_cast<double>(hi), alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  return clamp_len(x, lo, hi);
}

}  // namespace

std::vector<std::int64_t> sample_doc_lengths(const WorkloadSpec& spec,
                                             int count) {
  SLIM_CHECK(count >= 0, "negative document count");
  SLIM_CHECK(spec.min_len >= 1 && spec.max_len >= spec.min_len,
             "workload needs 1 <= min_len <= max_len");
  SLIM_CHECK(spec.zipf_exponent > 0.0, "zipf exponent must be positive");
  SLIM_CHECK(spec.long_fraction >= 0.0 && spec.long_fraction <= 1.0,
             "long_fraction must be a probability");
  Rng rng(spec.seed);
  std::vector<std::int64_t> lens(static_cast<std::size_t>(count));
  for (auto& len : lens) {
    switch (spec.mix) {
      case DocMix::Uniform:
        len = spec.min_len +
              static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(
                  spec.max_len - spec.min_len + 1)));
        break;
      case DocMix::Zipf:
        len = sample_bounded_pareto(rng.next_double(), spec.min_len,
                                    spec.max_len, spec.zipf_exponent);
        break;
      case DocMix::Bimodal:
        len = rng.next_double() < spec.long_fraction ? spec.max_len
                                                     : spec.min_len;
        break;
    }
  }
  return lens;
}

std::vector<std::int64_t> PackedBatch::mb_tokens() const {
  std::vector<std::int64_t> out;
  out.reserve(microbatches.size());
  for (const auto& mb : microbatches) out.push_back(mb.tokens);
  return out;
}

PackedBatch pack_documents(const std::vector<std::int64_t>& doc_lens, int m,
                           std::int64_t capacity) {
  SLIM_CHECK(m >= 1 && capacity >= 1, "packing needs m, capacity >= 1");
  // Longest-first for LPT balance; stable on the original order so equal
  // lengths pack deterministically.
  std::vector<std::size_t> order(doc_lens.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&doc_lens](std::size_t a, std::size_t b) {
                     return doc_lens[a] > doc_lens[b];
                   });
  PackedBatch batch;
  batch.microbatches.resize(static_cast<std::size_t>(m));
  for (const std::size_t doc : order) {
    const std::int64_t len = doc_lens[doc];
    SLIM_CHECK(len >= 1, "document lengths must be positive");
    PackedMicrobatch* best = nullptr;
    for (auto& mb : batch.microbatches) {
      if (mb.tokens + len > capacity) continue;
      if (best == nullptr || mb.tokens < best->tokens) best = &mb;
    }
    if (best == nullptr) {
      batch.dropped.push_back(len);
      continue;
    }
    best->doc_lens.push_back(len);
    best->tokens += len;
    batch.packed_tokens += len;
  }
  return batch;
}

std::vector<SliceLayout> uniform_layouts(
    const std::vector<std::int64_t>& mb_tokens, int n, std::int64_t align) {
  std::vector<SliceLayout> out;
  out.reserve(mb_tokens.size());
  for (const std::int64_t tokens : mb_tokens) {
    out.push_back(SliceLayout::uniform(tokens, n, align));
  }
  return out;
}

}  // namespace slim::core
