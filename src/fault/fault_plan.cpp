#include "src/fault/fault_plan.hpp"

#include <cmath>
#include <sstream>

#include "src/util/logging.hpp"
#include "src/util/table.hpp"

namespace slim::fault {

const char* op_filter_name(OpFilter filter) {
  switch (filter) {
    case OpFilter::Any: return "any";
    case OpFilter::Forward: return "forward";
    case OpFilter::Backward: return "backward";
    case OpFilter::Comm: return "comm";
  }
  return "?";
}

namespace {

OpFilter parse_op_filter(const std::string& name) {
  if (name == "any") return OpFilter::Any;
  if (name == "forward") return OpFilter::Forward;
  if (name == "backward") return OpFilter::Backward;
  if (name == "comm") return OpFilter::Comm;
  SLIM_CHECK(false, "unknown op filter '" + name + "'");
  return OpFilter::Any;
}

bool finite_ge(double value, double bound) {
  return std::isfinite(value) && value >= bound;
}

}  // namespace

// ---------------------------------------------------------------------------
// Validation

std::vector<PlanIssue> validate(const FaultPlan& plan, int world_size) {
  std::vector<PlanIssue> issues;
  auto add = [&](const std::string& rule, const std::string& where,
                 const std::string& message) {
    issues.push_back({rule, where, message});
  };
  auto device_ok = [&](int device, bool wildcard_allowed) {
    if (device == -1) return wildcard_allowed;
    if (device < 0) return false;
    return world_size < 0 || device < world_size;
  };

  for (std::size_t i = 0; i < plan.stragglers.size(); ++i) {
    const Straggler& s = plan.stragglers[i];
    const std::string where = "straggler " + std::to_string(i);
    if (!finite_ge(s.factor, 1.0)) {
      add("fault-straggler-factor", where,
          "slowdown factor must be finite and >= 1 (got " +
              std::to_string(s.factor) + ")");
    }
    if (!std::isfinite(s.jitter) || s.jitter < 0.0 || s.jitter > 1.0) {
      add("fault-straggler-jitter", where,
          "jitter must be in [0, 1] (got " + std::to_string(s.jitter) + ")");
    }
    if (s.from_op < 0 || (s.to_op >= 0 && s.to_op < s.from_op)) {
      add("fault-straggler-window", where,
          "op window [" + std::to_string(s.from_op) + ", " +
              std::to_string(s.to_op) + "] is empty or negative");
    }
    if (!device_ok(s.device, /*wildcard_allowed=*/true)) {
      add("fault-device-range", where,
          "device " + std::to_string(s.device) + " outside the cluster");
    }
  }
  for (std::size_t i = 0; i < plan.links.size(); ++i) {
    const LinkFault& l = plan.links[i];
    const std::string where = "link " + std::to_string(i);
    if (!finite_ge(l.slowdown, 1.0) || !finite_ge(l.extra_latency, 0.0)) {
      add("fault-link-degradation", where,
          "slowdown must be >= 1 and extra latency >= 0");
    }
    if (!device_ok(l.src, /*wildcard_allowed=*/true)) {
      add("fault-device-range", where,
          "sender " + std::to_string(l.src) + " outside the cluster");
    }
  }
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    const Crash& c = plan.crashes[i];
    const std::string where = "crash " + std::to_string(i);
    if (c.at_op < 0 || !finite_ge(c.restart_cost, 0.0)) {
      add("fault-crash-point", where,
          "crash needs at_op >= 0 and restart_cost >= 0");
    }
    if (!device_ok(c.device, /*wildcard_allowed=*/false)) {
      add("fault-device-range", where,
          "device " + std::to_string(c.device) + " outside the cluster");
    }
  }
  for (std::size_t i = 0; i < plan.stage_crashes.size(); ++i) {
    const StageCrash& c = plan.stage_crashes[i];
    const std::string where = "stage_crash " + std::to_string(i);
    if (c.after_messages < 1) {
      add("fault-stage-crash-point", where,
          "after_messages must be >= 1 (the crash fires between messages)");
    }
    if (!device_ok(c.stage, /*wildcard_allowed=*/false)) {
      add("fault-device-range", where,
          "stage " + std::to_string(c.stage) + " outside the pipeline");
    }
  }
  for (std::size_t i = 0; i < plan.stage_hangs.size(); ++i) {
    const StageHang& h = plan.stage_hangs[i];
    const std::string where = "stage_hang " + std::to_string(i);
    if (h.after_messages < 1) {
      add("fault-stage-hang-point", where, "after_messages must be >= 1");
    }
    if (!device_ok(h.stage, /*wildcard_allowed=*/false)) {
      add("fault-device-range", where,
          "stage " + std::to_string(h.stage) + " outside the pipeline");
    }
  }
  for (std::size_t i = 0; i < plan.delays.size(); ++i) {
    const MessageDelay& d = plan.delays[i];
    const std::string where = "delay " + std::to_string(i);
    if (d.every < 1 || !finite_ge(d.seconds, 0.0)) {
      add("fault-delay-params", where,
          "delay needs every >= 1 and seconds >= 0");
    }
    if (!device_ok(d.stage, /*wildcard_allowed=*/true)) {
      add("fault-device-range", where,
          "stage " + std::to_string(d.stage) + " outside the pipeline");
    }
  }
  for (std::size_t i = 0; i < plan.socket_drops.size(); ++i) {
    const SocketDrop& d = plan.socket_drops[i];
    const std::string where = "socket_drop " + std::to_string(i);
    if (d.every < 1 || d.count < 1 || d.max_retries < 0) {
      add("fault-socket-drop-params", where,
          "socket drop needs every >= 1, count >= 1 and max_retries >= 0");
    }
    if (!device_ok(d.stage, /*wildcard_allowed=*/true)) {
      add("fault-device-range", where,
          "stage " + std::to_string(d.stage) + " outside the pipeline");
    }
  }
  for (std::size_t i = 0; i < plan.socket_connect_fails.size(); ++i) {
    const SocketConnectFail& c = plan.socket_connect_fails[i];
    const std::string where = "socket_connect " + std::to_string(i);
    if (c.failures < 1) {
      add("fault-socket-connect-params", where, "failures must be >= 1");
    }
    if (!device_ok(c.stage, /*wildcard_allowed=*/false)) {
      add("fault-device-range", where,
          "stage " + std::to_string(c.stage) + " outside the pipeline");
    }
  }
  for (std::size_t i = 0; i < plan.socket_delays.size(); ++i) {
    const SocketDelay& d = plan.socket_delays[i];
    const std::string where = "socket_delay " + std::to_string(i);
    if (d.every < 1 || !finite_ge(d.seconds, 0.0)) {
      add("fault-socket-delay-params", where,
          "socket delay needs every >= 1 and seconds >= 0");
    }
    if (!device_ok(d.stage, /*wildcard_allowed=*/true)) {
      add("fault-device-range", where,
          "stage " + std::to_string(d.stage) + " outside the pipeline");
    }
  }
  return issues;
}

bool has_rule(const std::vector<PlanIssue>& issues,
              const std::string& rule_id) {
  for (const PlanIssue& issue : issues) {
    if (issue.rule_id == rule_id) return true;
  }
  return false;
}

std::string render(const std::vector<PlanIssue>& issues) {
  if (issues.empty()) return "clean\n";
  Table table({"rule", "location", "message"});
  for (const PlanIssue& issue : issues) {
    table.add_row({issue.rule_id, issue.location, issue.message});
  }
  return table.to_string();
}

// ---------------------------------------------------------------------------
// Text round-trip

namespace {

struct KvArgs {
  std::vector<std::pair<std::string, std::string>> pairs;

  const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : pairs) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const std::string* v = find(key);
    return v == nullptr ? fallback : std::stoll(*v);
  }
  double get_double(const std::string& key, double fallback) const {
    const std::string* v = find(key);
    return v == nullptr ? fallback : std::stod(*v);
  }
};

KvArgs parse_kv(std::istringstream& line, const std::string& kind,
                const std::vector<std::string>& allowed) {
  KvArgs args;
  std::string token;
  while (line >> token) {
    const std::size_t eq = token.find('=');
    SLIM_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < token.size(),
               "fault plan: '" + kind + "' expects key=value, got '" + token +
                   "'");
    const std::string key = token.substr(0, eq);
    bool known = false;
    for (const std::string& a : allowed) known = known || a == key;
    SLIM_CHECK(known, "fault plan: unknown key '" + key + "' for '" + kind +
                          "'");
    SLIM_CHECK(args.find(key) == nullptr,
               "fault plan: duplicate key '" + key + "'");
    args.pairs.emplace_back(key, token.substr(eq + 1));
  }
  return args;
}

}  // namespace

FaultPlan parse_plan(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::string kind;
    if (!(line >> kind)) continue;
    if (kind == "seed") {
      std::uint64_t seed = 0;
      SLIM_CHECK(static_cast<bool>(line >> seed),
                 "fault plan: 'seed' expects one integer");
      plan.seed = seed;
    } else if (kind == "straggler") {
      const KvArgs a = parse_kv(line, kind,
                                {"device", "ops", "factor", "jitter", "from",
                                 "to"});
      Straggler s;
      s.device = static_cast<int>(a.get_int("device", -1));
      if (const std::string* ops = a.find("ops")) s.ops = parse_op_filter(*ops);
      s.factor = a.get_double("factor", 1.0);
      s.jitter = a.get_double("jitter", 0.0);
      s.from_op = a.get_int("from", 0);
      s.to_op = a.get_int("to", -1);
      plan.stragglers.push_back(s);
    } else if (kind == "link") {
      const KvArgs a = parse_kv(line, kind, {"src", "slowdown",
                                             "extra_latency"});
      LinkFault l;
      l.src = static_cast<int>(a.get_int("src", -1));
      l.slowdown = a.get_double("slowdown", 1.0);
      l.extra_latency = a.get_double("extra_latency", 0.0);
      plan.links.push_back(l);
    } else if (kind == "crash") {
      const KvArgs a = parse_kv(line, kind, {"device", "at_op",
                                             "restart_cost"});
      Crash c;
      c.device = static_cast<int>(a.get_int("device", 0));
      c.at_op = a.get_int("at_op", 0);
      c.restart_cost = a.get_double("restart_cost", 1.0);
      plan.crashes.push_back(c);
    } else if (kind == "stage_crash") {
      const KvArgs a = parse_kv(line, kind, {"stage", "after_messages"});
      plan.stage_crashes.push_back(
          {static_cast<int>(a.get_int("stage", 0)),
           a.get_int("after_messages", 1)});
    } else if (kind == "stage_hang") {
      const KvArgs a = parse_kv(line, kind, {"stage", "after_messages"});
      plan.stage_hangs.push_back({static_cast<int>(a.get_int("stage", 0)),
                                  a.get_int("after_messages", 1)});
    } else if (kind == "delay") {
      const KvArgs a = parse_kv(line, kind, {"stage", "every", "seconds"});
      MessageDelay d;
      d.stage = static_cast<int>(a.get_int("stage", -1));
      d.every = a.get_int("every", 1);
      d.seconds = a.get_double("seconds", 0.0);
      plan.delays.push_back(d);
    } else if (kind == "socket_drop") {
      const KvArgs a = parse_kv(line, kind,
                                {"stage", "every", "count", "max_retries"});
      SocketDrop d;
      d.stage = static_cast<int>(a.get_int("stage", -1));
      d.every = a.get_int("every", 1);
      d.count = static_cast<int>(a.get_int("count", 1));
      d.max_retries = static_cast<int>(a.get_int("max_retries", 3));
      plan.socket_drops.push_back(d);
    } else if (kind == "socket_connect") {
      const KvArgs a = parse_kv(line, kind, {"stage", "failures"});
      plan.socket_connect_fails.push_back(
          {static_cast<int>(a.get_int("stage", 0)),
           static_cast<int>(a.get_int("failures", 1))});
    } else if (kind == "socket_delay") {
      const KvArgs a = parse_kv(line, kind, {"stage", "every", "seconds"});
      SocketDelay d;
      d.stage = static_cast<int>(a.get_int("stage", -1));
      d.every = a.get_int("every", 1);
      d.seconds = a.get_double("seconds", 0.0);
      plan.socket_delays.push_back(d);
    } else {
      SLIM_CHECK(false, "fault plan: unknown directive '" + kind + "'");
    }
  }
  return plan;
}

std::string to_text(const FaultPlan& plan) {
  std::ostringstream out;
  out << "seed " << plan.seed << "\n";
  for (const Straggler& s : plan.stragglers) {
    out << "straggler device=" << s.device << " ops=" << op_filter_name(s.ops)
        << " factor=" << s.factor << " jitter=" << s.jitter
        << " from=" << s.from_op << " to=" << s.to_op << "\n";
  }
  for (const LinkFault& l : plan.links) {
    out << "link src=" << l.src << " slowdown=" << l.slowdown
        << " extra_latency=" << l.extra_latency << "\n";
  }
  for (const Crash& c : plan.crashes) {
    out << "crash device=" << c.device << " at_op=" << c.at_op
        << " restart_cost=" << c.restart_cost << "\n";
  }
  for (const StageCrash& c : plan.stage_crashes) {
    out << "stage_crash stage=" << c.stage
        << " after_messages=" << c.after_messages << "\n";
  }
  for (const StageHang& h : plan.stage_hangs) {
    out << "stage_hang stage=" << h.stage
        << " after_messages=" << h.after_messages << "\n";
  }
  for (const MessageDelay& d : plan.delays) {
    out << "delay stage=" << d.stage << " every=" << d.every
        << " seconds=" << d.seconds << "\n";
  }
  for (const SocketDrop& d : plan.socket_drops) {
    out << "socket_drop stage=" << d.stage << " every=" << d.every
        << " count=" << d.count << " max_retries=" << d.max_retries << "\n";
  }
  for (const SocketConnectFail& c : plan.socket_connect_fails) {
    out << "socket_connect stage=" << c.stage << " failures=" << c.failures
        << "\n";
  }
  for (const SocketDelay& d : plan.socket_delays) {
    out << "socket_delay stage=" << d.stage << " every=" << d.every
        << " seconds=" << d.seconds << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// FaultReport

const char* event_kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::Straggler: return "straggler";
    case FaultEvent::Kind::LinkDegraded: return "link-degraded";
    case FaultEvent::Kind::Crash: return "crash";
    case FaultEvent::Kind::Hang: return "hang";
    case FaultEvent::Kind::Delay: return "delay";
    case FaultEvent::Kind::Watchdog: return "watchdog";
    case FaultEvent::Kind::Recovery: return "recovery";
    case FaultEvent::Kind::Shutdown: return "shutdown";
    case FaultEvent::Kind::SocketDrop: return "socket-drop";
    case FaultEvent::Kind::SocketDelay: return "socket-delay";
    case FaultEvent::Kind::ConnectRetry: return "connect-retry";
  }
  return "?";
}

bool FaultReport::has_kind(FaultEvent::Kind kind) const {
  for (const FaultEvent& event : events) {
    if (event.kind == kind) return true;
  }
  return false;
}

std::string FaultReport::render() const {
  std::ostringstream out;
  if (events.empty()) {
    out << "no fault events\n";
  } else {
    Table table({"event", "dev/stage", "time", "index", "detail"});
    for (const FaultEvent& event : events) {
      table.add_row({event_kind_name(event.kind),
                     event.device < 0 ? "-" : std::to_string(event.device),
                     event.time > 0.0 ? fmt(event.time, 4) : "-",
                     event.index < 0 ? "-" : std::to_string(event.index),
                     event.detail});
    }
    out << table.to_string();
  }
  if (injected_seconds > 0.0) {
    out << "injected slowdown: " << fmt(injected_seconds, 4) << " s\n";
  }
  if (recovery_overhead > 0.0) {
    out << "recovery overhead: " << fmt(recovery_overhead, 4) << " s\n";
  }
  if (!replayed_microbatches.empty()) {
    out << "replayed microbatches:";
    for (const int mb : replayed_microbatches) out << " " << mb;
    out << "\n";
  }
  if (!blocked_table.empty()) {
    out << "blocked-on state:\n" << blocked_table;
  }
  return out.str();
}

}  // namespace slim::fault
