// Eq. 2: the communication volume of attention context exchange per
// microbatch per device, measured from the planner and compared with the
// closed form. Also ablates Early Key-Value Exchange (§5) by anchoring the
// transfers late.

#include "src/core/context_exchange.hpp"

#include "bench_common.hpp"

using namespace slim;

namespace {

sched::PipelineSpec spec_for(int p, int n) {
  auto spec = slimbench::base_spec(model::llama70b(), 8, p,
                                   static_cast<std::int64_t>(n) * 8192, 3);
  spec.n = n;
  spec.retain_kv = true;
  return spec;
}

}  // namespace

static void BM_Eq2Planner(benchmark::State& state) {
  const auto spec = spec_for(8, 32);
  const core::ExchangePlanner planner(spec);
  for (auto _ : state) {
    double total = 0.0;
    for (int dev = 0; dev < spec.p; ++dev) {
      total += planner.forward_volume_per_microbatch(dev);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Eq2Planner)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("eq2_exchange_volume");
  slimbench::print_banner(
      "Eq. 2 — context-exchange communication volume",
      "Llama 70B (GQA: KV is h/8), t=8, slices of 8K tokens",
      "per-device volume stays under (2 - (p-1)/n) L M_h and is nearly "
      "independent of p and n");

  Table table({"p", "n", "measured max device", "Eq. 2 bound",
               "bound / L*M_h"});
  for (int p : {2, 4, 8}) {
    for (int mult : {1, 2, 4, 8}) {
      const int n = p * mult;
      const auto spec = spec_for(p, n);
      const core::ExchangePlanner planner(spec);
      double max_volume = 0.0;
      for (int dev = 0; dev < p; ++dev) {
        max_volume =
            std::max(max_volume, planner.forward_volume_per_microbatch(dev));
      }
      const double m_h =
          model::embedding_bytes(spec.cfg, spec.shard, spec.seq);
      const double kv_ratio = static_cast<double>(spec.cfg.kv_hidden()) /
                              static_cast<double>(spec.cfg.hidden);
      const double bound = core::exchange_volume_bound(
          p, n, spec.cfg.layers, m_h, kv_ratio);
      table.add_row({fmt(static_cast<std::int64_t>(p)),
                     fmt(static_cast<std::int64_t>(n)),
                     format_bytes(max_volume), format_bytes(bound),
                     fmt(bound / (static_cast<double>(spec.cfg.layers) * m_h),
                         3)});
    }
  }
  slimbench::print_table("KV exchange volume vs slice count", table);

  // Early-exchange ablation: measured end-to-end effect of the overlap.
  slimbench::print_banner(
      "§5 ablation — Early Key-Value Exchange overlap",
      "Llama 13B, t=8, p=4, m=2, n=16, 256K context",
      "with early launch the exchange hides behind compute; without it, "
      "every pass pays the transfer latency");
  auto spec = slimbench::base_spec(model::llama13b(), 8, 4, 256 * 1024, 2);
  spec.n = 16;
  spec.vocab_parallel = true;
  spec.context_exchange = false;
  const auto no_exchange = core::run_scheme(core::Scheme::SlimPipe, spec);
  spec.context_exchange = true;
  const auto with_exchange = core::run_scheme(core::Scheme::SlimPipe, spec);
  Table ab({"variant", "iteration", "bubble", "MFU"});
  ab.add_row({"no exchange (imbalanced)", format_time(no_exchange.iteration_time),
              format_percent(no_exchange.bubble_fraction),
              format_percent(no_exchange.mfu)});
  ab.add_row({"exchange + early KV launch",
              format_time(with_exchange.iteration_time),
              format_percent(with_exchange.bubble_fraction),
              format_percent(with_exchange.mfu)});
  spec.adaptive_exchange = true;
  const auto adaptive = core::run_scheme(core::Scheme::SlimPipe, spec);
  ab.add_row({"adaptive exchange (extension)",
              format_time(adaptive.iteration_time),
              format_percent(adaptive.bubble_fraction),
              format_percent(adaptive.mfu)});
  slimbench::print_table("exchange on/off A-B", ab);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
