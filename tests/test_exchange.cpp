// Tests for the attention context-exchange planner (paper §4.2): cohort
// balancing, partner symmetry, juncture behaviour and Eq. 2's volume bound.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/context_exchange.hpp"
#include "src/core/slice.hpp"
#include "src/model/transformer.hpp"

namespace slim::core {
namespace {

sched::PipelineSpec make_spec(int p, int n, int m,
                              std::int64_t seq = 64 * 1024) {
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.policy = model::CheckpointPolicy::None;
  spec.p = p;
  spec.v = 1;
  spec.m = m;
  spec.n = n;
  spec.seq = seq;
  spec.retain_kv = true;
  return spec;
}

struct ExchangeCase {
  int p;
  int n;
  int m;
};

class PlannerTest : public ::testing::TestWithParam<ExchangeCase> {};

// In any steady-state cohort, paired devices end with the pair's mean load;
// across the cohort the post-exchange spread is at most one slice of KV
// (paper §4.2.2).
TEST_P(PlannerTest, BalancesWithinOneSlice) {
  const ExchangeCase c = GetParam();
  const auto spec = make_spec(c.p, c.n, c.m);
  const ExchangePlanner planner(spec);
  const double slice_tokens = static_cast<double>(spec.slice_len());
  const std::int64_t total = static_cast<std::int64_t>(c.n) * c.m;

  for (std::int64_t tick = c.p; tick < total; ++tick) {
    double lo = 1e30, hi = -1e30;
    for (int dev = 0; dev < c.p; ++dev) {
      const std::int64_t stream = tick - dev;
      if (stream < 0 || stream >= total) continue;
      const double load = planner.balanced_kv_load(dev, stream, true);
      lo = std::min(lo, load);
      hi = std::max(hi, load);
    }
    EXPECT_LE(hi - lo, slice_tokens + 1.0)
        << "tick " << tick << " spread too large";
  }
}

// If device a sheds KV to device b, then b's plan contains the mirrored
// exchange (a sends Q+KV and receives O; b the reverse).
TEST_P(PlannerTest, PartnerSymmetry) {
  const ExchangeCase c = GetParam();
  if (c.p < 2) return;
  const auto spec = make_spec(c.p, c.n, c.m);
  const ExchangePlanner planner(spec);
  const std::int64_t total = static_cast<std::int64_t>(c.n) * c.m;
  for (std::int64_t tick = 0; tick < total + c.p; ++tick) {
    for (int dev = 0; dev < c.p; ++dev) {
      const std::int64_t stream = tick - dev;
      if (stream < 0 || stream >= total) continue;
      const auto plan = planner.plan(dev, stream, true);
      for (const auto& ex : plan.exchanges) {
        const std::int64_t partner_stream = tick - ex.partner;
        ASSERT_GE(partner_stream, 0);
        ASSERT_LT(partner_stream, total);
        const auto mirror = planner.plan(ex.partner, partner_stream, true);
        bool found = false;
        for (const auto& mex : mirror.exchanges) {
          if (mex.partner != dev) continue;
          found = true;
          EXPECT_NEAR(mex.send_bytes, ex.recv_bytes, 1.0);
          EXPECT_NEAR(mex.recv_bytes, ex.send_bytes, 1.0);
        }
        EXPECT_TRUE(found) << "no mirrored exchange for dev " << dev
                           << " at tick " << tick;
      }
    }
  }
}

TEST_P(PlannerTest, WarmupCohortsDegradeGracefully) {
  const ExchangeCase c = GetParam();
  const auto spec = make_spec(c.p, c.n, c.m);
  const ExchangePlanner planner(spec);
  // Stream 0 on device 0 runs alone (tick 0): no partner, own load.
  const auto plan = planner.plan(0, 0, true);
  EXPECT_TRUE(plan.exchanges.empty());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlannerTest,
                         ::testing::Values(ExchangeCase{2, 4, 2},
                                           ExchangeCase{4, 8, 2},
                                           ExchangeCase{4, 16, 3},
                                           ExchangeCase{8, 16, 2},
                                           ExchangeCase{8, 32, 2},
                                           ExchangeCase{3, 9, 2}));

TEST(PlannerEq2Test, ForwardVolumeWithinBound) {
  // Eq. 2: exchanged context per microbatch per device is bounded by
  // (2 - (p-1)/n) L M_h — our per-device send volume must respect it.
  for (const ExchangeCase c :
       {ExchangeCase{4, 8, 3}, ExchangeCase{4, 16, 3}, ExchangeCase{8, 16, 3},
        ExchangeCase{8, 32, 3}, ExchangeCase{2, 8, 3}}) {
    const auto spec = make_spec(c.p, c.n, c.m);
    const ExchangePlanner planner(spec);
    const double m_h = model::embedding_bytes(spec.cfg, spec.shard, spec.seq);
    const double kv_ratio = static_cast<double>(spec.cfg.kv_hidden()) /
                            static_cast<double>(spec.cfg.hidden);
    const double bound = exchange_volume_bound(
        c.p, c.n, spec.cfg.layers, m_h, kv_ratio);
    for (int dev = 0; dev < c.p; ++dev) {
      const double volume = planner.forward_volume_per_microbatch(dev);
      EXPECT_LE(volume, bound * 1.05)
          << "p=" << c.p << " n=" << c.n << " dev=" << dev;
    }
    // And the bound itself obeys the closed-form cap 2 L M_h.
    EXPECT_LE(bound,
              (2.0 - static_cast<double>(c.p - 1) / c.n) *
                      static_cast<double>(spec.cfg.layers) * m_h / c.p *
                      static_cast<double>(c.p) +
                  1.0);
  }
}

TEST(PlannerLoadTest, ForwardLoadIsArithmetic) {
  const auto spec = make_spec(4, 8, 2);
  const ExchangePlanner planner(spec);
  const double len = static_cast<double>(spec.slice_len());
  for (int s = 0; s < 8; ++s) {
    EXPECT_NEAR(planner.forward_load(s), s * len + (len + 1.0) / 2.0, 1e-6);
  }
  // Microbatch juncture: stream n has slice 0's load again.
  EXPECT_NEAR(planner.forward_load(8), planner.forward_load(0), 1e-9);
}

TEST(PlannerBackwardTest, BackwardStreamsReverseSlices) {
  const auto spec = make_spec(4, 8, 2);
  const ExchangePlanner planner(spec);
  // Backward stream 0 is slice n-1 (heaviest); the planner must therefore
  // balance it downward in a full cohort.
  const auto early = planner.plan(3, 3, /*forward=*/false);
  const auto solo = planner.plan(3, 0, /*forward=*/false);
  EXPECT_LT(early.attn_time, solo.attn_time + 1e-12);
}

}  // namespace
}  // namespace slim::core
