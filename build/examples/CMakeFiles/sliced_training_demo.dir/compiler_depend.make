# Empty compiler generated dependencies file for sliced_training_demo.
# This may be replaced when dependencies are built.
