#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>

#include "src/sched/builder.hpp"

namespace slimbench {

slim::sched::PipelineSpec base_spec(const slim::model::TransformerConfig& cfg,
                                    std::int64_t t, int p, std::int64_t seq,
                                    int m) {
  slim::sched::PipelineSpec spec;
  spec.cfg = cfg;
  spec.gpu = slim::model::hopper80();
  spec.shard = {t, 1, 1, 8};
  spec.policy = slim::model::CheckpointPolicy::None;
  spec.p = p;
  spec.m = m;
  spec.seq = seq;
  return spec;
}

void print_banner(const std::string& artifact, const std::string& setup,
                  const std::string& paper_expectation) {
  // Benches compile thousands of schedules over their grids; skip the
  // static analysis passes unless explicitly requested (SLIMPIPE_LINT=1).
  const char* lint = std::getenv("SLIMPIPE_LINT");
  slim::sched::set_compile_lint(lint != nullptr && lint[0] == '1');
  std::printf("\n================================================================\n");
  std::printf("Reproducing: %s\n", artifact.c_str());
  std::printf("Setup:       %s\n", setup.c_str());
  std::printf("Paper shape: %s\n", paper_expectation.c_str());
  std::printf("================================================================\n");
}

std::string status_cell(const slim::sched::ScheduleResult& result) {
  return result.oom ? "OOM" : slim::format_percent(result.mfu);
}

}  // namespace slimbench
