#include "src/obs/clock.hpp"

#include <algorithm>

namespace slim::obs {

ClockAligner::ClockAligner(std::size_t window)
    : capacity_(window == 0 ? 1 : window) {}

void ClockAligner::add(const ClockSample& sample) {
  const double rtt = sample.rtt();
  if (rtt < 0.0) return;
  window_.push_back(Entry{sample.theta(), rtt});
  if (window_.size() > capacity_) window_.pop_front();
  ++accepted_;
}

double ClockAligner::offset() const {
  if (window_.empty()) return 0.0;
  const auto it = std::min_element(
      window_.begin(), window_.end(),
      [](const Entry& a, const Entry& b) { return a.rtt < b.rtt; });
  return it->theta;
}

double ClockAligner::uncertainty() const { return best_rtt() / 2.0; }

double ClockAligner::best_rtt() const {
  if (window_.empty()) return 0.0;
  const auto it = std::min_element(
      window_.begin(), window_.end(),
      [](const Entry& a, const Entry& b) { return a.rtt < b.rtt; });
  return it->rtt;
}

}  // namespace slim::obs
