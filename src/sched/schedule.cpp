#include "src/sched/schedule.hpp"

#include <sstream>

#include "src/util/logging.hpp"
#include "src/util/math.hpp"

namespace slim::sched {

int StageLayout::device_of(int stage) const {
  SLIM_CHECK(stage >= 0 && stage < num_stages(), "stage out of range");
  switch (kind) {
    case StageLayoutKind::Sequential:
      return stage;
    case StageLayoutKind::Interleaved:
      return stage % p;
    case StageLayoutKind::VShape:
      // Down the V then back up: stages 0..p-1 map to devices 0..p-1,
      // stages p..2p-1 map to devices p-1..0.
      return stage < p ? stage : 2 * p - 1 - stage;
  }
  return 0;
}

int StageLayout::chunk_of(int stage) const {
  switch (kind) {
    case StageLayoutKind::Sequential:
      return 0;
    case StageLayoutKind::Interleaved:
      return stage / p;
    case StageLayoutKind::VShape:
      return stage < p ? 0 : 1;
  }
  return 0;
}

int StageLayout::stage_of(int device, int chunk) const {
  SLIM_CHECK(device >= 0 && device < p && chunk >= 0 && chunk < v,
             "device/chunk out of range");
  switch (kind) {
    case StageLayoutKind::Sequential:
      return device;
    case StageLayoutKind::Interleaved:
      return chunk * p + device;
    case StageLayoutKind::VShape:
      return chunk == 0 ? device : 2 * p - 1 - device;
  }
  return 0;
}

std::string PipelineSpec::validate() const {
  std::ostringstream err;
  if (p < 1 || v < 1 || m < 1 || n < 1) {
    err << "p, v, m, n must be >= 1; ";
  }
  if (layout == StageLayoutKind::Sequential && v != 1) {
    err << "sequential layout requires v == 1; ";
  }
  if (layout == StageLayoutKind::VShape && v != 2) {
    err << "V-shape layout requires v == 2; ";
  }
  if (cfg.layers < static_cast<std::int64_t>(p * v)) {
    err << "fewer layers (" << cfg.layers << ") than stages (" << p * v
        << "); ";
  }
  if (seq <= 0) {
    err << "sequence length must be positive; ";
  }
  if (n > 1 && seq % n != 0) {
    err << "sequence not divisible into n slices; ";
  }
  if (n > 1 && n % p != 0) {
    err << "n must be a multiple of p (uniform slicing, paper 4.1.2); ";
  }
  if (slice_len() > 0 && slice_len() % shard.c != 0 && shard.c > 1) {
    err << "slice length not divisible by context parallel size; ";
  }
  if (context_exchange && n == 1) {
    err << "context exchange requires slicing (n > 1); ";
  }
  return err.str();
}

obs::RunRecord to_run_record(const ScheduleResult& result,
                             const std::string& label) {
  obs::RunRecord run;
  run.label = label;
  run.iteration_time = result.iteration_time;
  run.bubble_fraction = result.bubble_fraction;
  run.mfu = result.mfu;
  run.peak_memory = result.peak_memory;
  run.oom = result.oom;
  run.metrics = result.metrics;
  return run;
}

}  // namespace slim::sched
