// Tests for the observability tentpole: cross-process clock alignment
// (obs/clock.hpp), the crash-surviving flight recorder and its wire flush
// (obs/flight_recorder.hpp, dist/wire.hpp), and live telemetry snapshots —
// Prometheus exposition golden lines, snapshot JSON round trips and the
// slimpipe_top terminal rendering (obs/telemetry.hpp).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/dist/socket.hpp"
#include "src/dist/wire.hpp"
#include "src/obs/clock.hpp"
#include "src/obs/flight_recorder.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/telemetry.hpp"

namespace slim::obs {
namespace {

// ---------------------------------------------------------------------------
// Clock alignment: the NTP 4-timestamp estimator.

/// Builds the sample a supervisor would record when the worker clock runs
/// `offset` seconds ahead of the run clock and the one-way delays are
/// `d_out` (ping) and `d_back` (pong).
ClockSample round_trip(double t1, double offset, double d_out, double d_back,
                       double hold = 0.0) {
  ClockSample s;
  s.t1 = t1;
  s.t2 = t1 + d_out + offset;         // worker clock
  s.t3 = s.t2 + hold;                 // worker clock
  s.t4 = (s.t3 - offset) + d_back;    // back on the run clock
  return s;
}

TEST(ClockAlignerTest, SymmetricDelaysRecoverOffsetExactly) {
  const double offset = 3.25;  // worker clock 3.25s ahead of the run clock
  ClockAligner aligner;
  aligner.add(round_trip(10.0, offset, 0.002, 0.002, 0.0005));
  ASSERT_TRUE(aligner.aligned());
  EXPECT_NEAR(aligner.offset(), offset, 1e-12);
  // Mapping a worker timestamp back lands on the run clock.
  EXPECT_NEAR(aligner.to_local(100.0 + offset), 100.0, 1e-12);
  // rtt excludes the remote hold.
  EXPECT_NEAR(aligner.best_rtt(), 0.004, 1e-12);
  EXPECT_NEAR(aligner.uncertainty(), 0.002, 1e-12);
}

TEST(ClockAlignerTest, AsymmetryErrorStaysWithinHalfRtt) {
  const double offset = -1.5;  // worker clock behind the run clock
  ClockAligner aligner;
  // Badly asymmetric path: 9ms out, 1ms back.
  aligner.add(round_trip(5.0, offset, 0.009, 0.001));
  ASSERT_TRUE(aligner.aligned());
  const double error = aligner.offset() - offset;
  EXPECT_LE(std::abs(error), aligner.uncertainty() + 1e-12);
  EXPECT_NEAR(aligner.uncertainty(), 0.005, 1e-12);  // rtt/2 of 10ms
}

TEST(ClockAlignerTest, MinimumRttSampleWins) {
  const double offset = 0.75;
  ClockAligner aligner;
  // A sloppy asymmetric sample first, then one tight symmetric round trip.
  aligner.add(round_trip(1.0, offset, 0.020, 0.002));
  aligner.add(round_trip(2.0, offset, 0.0005, 0.0005));
  aligner.add(round_trip(3.0, offset, 0.015, 0.001));
  EXPECT_NEAR(aligner.offset(), offset, 1e-12);  // the tight sample's theta
  EXPECT_NEAR(aligner.best_rtt(), 0.001, 1e-12);
  EXPECT_EQ(aligner.samples(), 3u);
}

TEST(ClockAlignerTest, SlidingWindowTracksDrift) {
  ClockAligner aligner(/*window=*/4);
  // An early, very tight sample at the old offset...
  aligner.add(round_trip(0.0, 1.0, 0.0001, 0.0001));
  EXPECT_NEAR(aligner.offset(), 1.0, 1e-12);
  // ...then the worker clock drifts; once the window slides past the old
  // sample the estimate must follow the new offset even though the old
  // sample had the tighter rtt.
  for (int i = 0; i < 4; ++i) {
    aligner.add(round_trip(10.0 + i, 2.0, 0.001, 0.001));
  }
  EXPECT_NEAR(aligner.offset(), 2.0, 1e-12);
  EXPECT_EQ(aligner.samples(), 5u);
}

TEST(ClockAlignerTest, NegativeRttRejected) {
  ClockAligner aligner;
  ClockSample bad;
  bad.t1 = 10.0;
  bad.t2 = 20.0;
  bad.t3 = 25.0;
  bad.t4 = 10.001;  // rtt = 0.001 - 5.0 < 0: clock misuse, not physics
  ASSERT_LT(bad.rtt(), 0.0);
  aligner.add(bad);
  EXPECT_FALSE(aligner.aligned());
  EXPECT_EQ(aligner.samples(), 0u);
  EXPECT_EQ(aligner.offset(), 0.0);
  EXPECT_EQ(aligner.uncertainty(), 0.0);
  // Unaligned to_local is the identity.
  EXPECT_EQ(aligner.to_local(42.0), 42.0);
}

// ---------------------------------------------------------------------------
// Flight recorder: ring semantics, flush suffixes, wraparound accounting.

TEST(FlightRecorderTest, FlushReturnsSuffixOldestFirst) {
  FlightRecorder rec(8);
  rec.record(FlightKind::SpanBegin, 0.1, 0, 0, 0, "fwd");
  rec.record(FlightKind::SpanEnd, 0.2, 0, 0, 0, "fwd");
  rec.record(FlightKind::Send, 0.3, 0, 0, 128, "fwd");
  auto flush = rec.flush();
  EXPECT_EQ(flush.dropped, 0u);
  ASSERT_EQ(flush.events.size(), 3u);
  EXPECT_EQ(flush.events[0].seq, 0u);
  EXPECT_EQ(flush.events[0].kind, FlightKind::SpanBegin);
  EXPECT_EQ(flush.events[2].kind, FlightKind::Send);
  EXPECT_EQ(flush.events[2].value, 128);
  EXPECT_EQ(flush.events[2].label_str(), "fwd");

  // A second flush carries only what was recorded since.
  rec.record(FlightKind::Commit, 0.4, 1, -1, 1, "");
  flush = rec.flush();
  EXPECT_EQ(flush.dropped, 0u);
  ASSERT_EQ(flush.events.size(), 1u);
  EXPECT_EQ(flush.events[0].seq, 3u);
  EXPECT_EQ(flush.events[0].kind, FlightKind::Commit);

  // Nothing new: empty flush, no drops.
  flush = rec.flush();
  EXPECT_EQ(flush.dropped, 0u);
  EXPECT_TRUE(flush.events.empty());
}

TEST(FlightRecorderTest, WraparoundCountsDroppedEvents) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record(FlightKind::Mark, 0.01 * i, i, -1, i, "m");
  }
  EXPECT_EQ(rec.recorded(), 10u);
  const auto flush = rec.flush();
  // Ring of 4 holds seqs 6..9; seqs 0..5 were overwritten before any flush.
  EXPECT_EQ(flush.dropped, 6u);
  ASSERT_EQ(flush.events.size(), 4u);
  EXPECT_EQ(flush.events.front().seq, 6u);
  EXPECT_EQ(flush.events.back().seq, 9u);
  for (std::size_t i = 1; i < flush.events.size(); ++i) {
    EXPECT_EQ(flush.events[i].seq, flush.events[i - 1].seq + 1);
  }
}

TEST(FlightRecorderTest, TailReturnsLastKInRing) {
  FlightRecorder rec(4);
  for (int i = 0; i < 6; ++i) {
    rec.record(FlightKind::Mark, 0.0, i, -1, i, "");
  }
  auto tail = rec.tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 4u);
  EXPECT_EQ(tail[1].seq, 5u);
  // Asking for more than the ring holds returns the whole ring.
  tail = rec.tail(100);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().seq, 2u);
}

TEST(FlightRecorderTest, LabelTruncatesToFixedSize) {
  FlightEvent ev;
  const std::string longer(64, 'x');
  ev.set_label(longer);
  // 24-byte field, NUL-terminated: at most 23 payload characters.
  EXPECT_EQ(ev.label_str(), std::string(FlightEvent::kLabelSize - 1, 'x'));
  ev.set_label("ok");
  EXPECT_EQ(ev.label_str(), "ok");
}

TEST(FlightRecorderTest, RenderedTailNamesKindsAndLabels) {
  FlightRecorder rec(8);
  rec.record(FlightKind::Send, 0.001, 2, 1, 4096, "fwd");
  rec.record(FlightKind::Commit, 0.002, 2, -1, 3, "");
  const std::string text = render_flight_tail(rec.tail(8));
  EXPECT_NE(text.find("send"), std::string::npos);
  EXPECT_NE(text.find("commit"), std::string::npos);
  EXPECT_NE(text.find("fwd"), std::string::npos);
  EXPECT_NE(text.find("4096"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight flush on the wire: Telemetry payload round trip + torn recovery.

TEST(FlightWireTest, FlushRoundTrip) {
  dist::WireFlightFlush flush;
  flush.dropped = 17;
  FlightEvent ev;
  ev.ts = 1.25;
  ev.seq = 41;
  ev.kind = FlightKind::Recv;
  ev.mb = 3;
  ev.slice = 1;
  ev.value = 6144;
  ev.set_label("this label is much longer than fits");
  flush.events.push_back(ev);
  ev.seq = 42;
  ev.kind = FlightKind::Fault;
  ev.set_label("hang");
  flush.events.push_back(ev);

  dist::Writer w;
  dist::write_flight_flush(w, flush);
  const std::vector<std::uint8_t> bytes = w.take();
  dist::Reader r(bytes);
  const dist::WireFlightFlush back = dist::read_flight_flush(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.dropped, 17u);
  ASSERT_EQ(back.events.size(), 2u);
  EXPECT_EQ(back.events[0].ts, 1.25);
  EXPECT_EQ(back.events[0].seq, 41u);
  EXPECT_EQ(back.events[0].kind, FlightKind::Recv);
  EXPECT_EQ(back.events[0].mb, 3);
  EXPECT_EQ(back.events[0].slice, 1);
  EXPECT_EQ(back.events[0].value, 6144);
  // The label survives exactly as truncated at record time.
  EXPECT_EQ(back.events[0].label_str(),
            std::string("this label is much longer than fits")
                .substr(0, FlightEvent::kLabelSize - 1));
  EXPECT_EQ(back.events[1].kind, FlightKind::Fault);
  EXPECT_EQ(back.events[1].label_str(), "hang");
}

TEST(FlightWireTest, TornTelemetryFlushDetected) {
  // A worker SIGKILLed mid-flush leaves a truncated Telemetry frame on the
  // control socket; the supervisor's reader must classify it Torn and keep
  // the events from earlier, complete flushes.
  dist::WireFlightFlush flush;
  FlightEvent ev;
  ev.kind = FlightKind::Commit;
  ev.set_label("mb0");
  for (int i = 0; i < 4; ++i) {
    ev.seq = static_cast<std::uint64_t>(i);
    flush.events.push_back(ev);
  }
  dist::Writer w;
  dist::write_flight_flush(w, flush);
  dist::Frame out;
  out.kind = dist::FrameKind::Telemetry;
  out.stage = 1;
  out.payload = w.take();

  // Serialize via a scratch pair to capture the exact on-wire bytes.
  dist::SocketPair scratch = dist::make_socket_pair();
  ASSERT_TRUE(dist::send_frame(scratch.a.get(), out));
  std::vector<std::uint8_t> bytes(36 + out.payload.size());
  ASSERT_EQ(dist::recv_all(scratch.b.get(), bytes.data(), bytes.size()),
            dist::IoStatus::Ok);

  dist::SocketPair pair = dist::make_socket_pair();
  ASSERT_TRUE(dist::send_all(pair.a.get(), bytes.data(),
                             36 + out.payload.size() / 2));
  pair.a.reset();
  dist::Frame in;
  EXPECT_EQ(dist::recv_frame(pair.b.get(), &in), dist::IoStatus::Torn);
}

TEST(FlightWireTest, TruncatedFlushPayloadThrowsNotReadsGarbage) {
  // Even if a corrupt-but-CRC-passing payload were possible, the Reader's
  // bounds checks fail loudly instead of fabricating events.
  dist::WireFlightFlush flush;
  FlightEvent ev;
  flush.events.push_back(ev);
  dist::Writer w;
  dist::write_flight_flush(w, flush);
  std::vector<std::uint8_t> bytes = w.take();
  bytes.resize(bytes.size() / 2);
  dist::Reader r(bytes);
  EXPECT_THROW(dist::read_flight_flush(r), std::logic_error);
}

TEST(FlightWireTest, FlowIdsDeterministicAndDistinct) {
  EXPECT_EQ(dist::wire_flow_id(0, false, 1, 2, 3),
            dist::wire_flow_id(0, false, 1, 2, 3));
  std::set<std::int64_t> ids;
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (int backward = 0; backward < 2; ++backward) {
      for (int stage = 0; stage < 4; ++stage) {
        for (int mb = 0; mb < 4; ++mb) {
          for (int slice = 0; slice < 4; ++slice) {
            ids.insert(
                dist::wire_flow_id(attempt, backward != 0, stage, mb, slice));
          }
        }
      }
    }
  }
  EXPECT_EQ(ids.size(), 2u * 2u * 4u * 4u * 4u);
  // High base: never collides with Recorder::begin_flow's 0-based counter.
  EXPECT_GE(*ids.begin(), std::int64_t{1} << 56);
}

// ---------------------------------------------------------------------------
// Live snapshots: JSON round trip, Prometheus golden, terminal rendering.

LiveSnapshot sample_snapshot() {
  LiveSnapshot snap;
  snap.ts = 1.5;
  snap.phase = "running";
  snap.attempt = 2;
  snap.microbatches = 4;
  snap.merged_microbatches = 1;
  StageLive s0;
  s0.stage = 0;
  s0.pid = 4242;
  s0.state = "running";
  s0.beat_age_seconds = 0.025;
  s0.messages = 31;
  s0.done_f = 6;
  s0.want_f = 8;
  s0.done_b = 4;
  s0.want_b = 8;
  s0.live = 2;
  s0.live_cap = 4;
  s0.queue = 1;
  s0.deferred = 0;
  s0.committed = 1;
  s0.committed_total = 4;
  s0.frames_out = 12;
  s0.frames_in = 11;
  s0.bytes_out = 98304.0;
  s0.bytes_in = 90112.0;
  s0.crc_rejects = 0;
  s0.retries = 2;
  s0.arena_peak_bytes = 1 << 20;
  s0.clock_offset_seconds = 0.0015;
  s0.clock_uncertainty_seconds = 0.0002;
  s0.flight_events = 57;
  s0.respawns = 1;
  snap.stages.push_back(s0);
  StageLive s1 = s0;
  s1.stage = 1;
  s1.pid = 4243;
  s1.state = "killed by signal 9 (heartbeat deadline)";
  snap.stages.push_back(s1);
  return snap;
}

TEST(SnapshotJsonTest, RoundTripsThroughDumpAndParse) {
  const LiveSnapshot snap = sample_snapshot();
  const std::string text = snapshot_to_json(snap).dump(2);
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::parse(text, &parsed, &error)) << error;
  LiveSnapshot back;
  ASSERT_TRUE(snapshot_from_json(parsed, &back));
  EXPECT_EQ(back.ts, 1.5);
  EXPECT_EQ(back.phase, "running");
  EXPECT_EQ(back.attempt, 2);
  EXPECT_EQ(back.microbatches, 4);
  EXPECT_EQ(back.merged_microbatches, 1);
  ASSERT_EQ(back.stages.size(), 2u);
  EXPECT_EQ(back.stages[0].pid, 4242);
  EXPECT_EQ(back.stages[0].frames_out, 12);
  EXPECT_EQ(back.stages[0].bytes_in, 90112.0);
  EXPECT_EQ(back.stages[0].clock_offset_seconds, 0.0015);
  EXPECT_EQ(back.stages[0].flight_events, 57);
  EXPECT_EQ(back.stages[1].state, "killed by signal 9 (heartbeat deadline)");
  EXPECT_EQ(back.stages[1].respawns, 1);
}

TEST(SnapshotJsonTest, RejectsNonSnapshotJson) {
  JsonValue other = JsonValue::make_object();
  other.set("ts", JsonValue::make_number(1.0));  // no marker key
  LiveSnapshot out;
  EXPECT_FALSE(snapshot_from_json(other, &out));
  EXPECT_FALSE(snapshot_from_json(JsonValue::make_array(), &out));
  EXPECT_FALSE(snapshot_from_json(JsonValue::make_number(3.0), &out));
}

TEST(PrometheusTest, GoldenExpositionLines) {
  const std::string text = prometheus_text(sample_snapshot());
  const auto has_line = [&](const std::string& line) {
    return text.find("\n" + line + "\n") != std::string::npos ||
           text.rfind(line + "\n", 0) == 0;
  };
  // Header series.
  EXPECT_TRUE(has_line("# TYPE slimpipe_snapshot_ts_seconds gauge")) << text;
  EXPECT_TRUE(has_line("slimpipe_snapshot_ts_seconds 1.5")) << text;
  EXPECT_TRUE(has_line("slimpipe_attempt 2")) << text;
  EXPECT_TRUE(has_line("slimpipe_merged_microbatches 1")) << text;
  // Liveness gauge: stage 0 is in a worker-loop state, stage 1 shows the
  // supervisor's exit description and must read 0.
  EXPECT_TRUE(has_line("# TYPE slimpipe_stage_up gauge")) << text;
  EXPECT_TRUE(has_line("slimpipe_stage_up{stage=\"0\"} 1")) << text;
  EXPECT_TRUE(has_line("slimpipe_stage_up{stage=\"1\"} 0")) << text;
  // Cumulative counters carry the _total suffix and a TYPE of counter.
  EXPECT_TRUE(has_line("# TYPE slimpipe_stage_frames_out_total counter"))
      << text;
  EXPECT_TRUE(has_line("slimpipe_stage_frames_out_total{stage=\"0\"} 12"))
      << text;
  EXPECT_TRUE(has_line("slimpipe_stage_bytes_in_total{stage=\"1\"} 90112"))
      << text;
  EXPECT_TRUE(has_line("slimpipe_stage_flight_events_total{stage=\"0\"} 57"))
      << text;
  EXPECT_TRUE(has_line("slimpipe_stage_respawns_total{stage=\"1\"} 1"))
      << text;
  // Every series is announced: one HELP and one TYPE per name.
  for (const char* name :
       {"slimpipe_stage_beat_age_seconds", "slimpipe_stage_queue_depth",
        "slimpipe_stage_clock_offset_seconds",
        "slimpipe_stage_arena_peak_bytes"}) {
    EXPECT_NE(text.find(std::string("# HELP ") + name + " "),
              std::string::npos)
        << name;
    EXPECT_NE(text.find(std::string("# TYPE ") + name + " "),
              std::string::npos)
        << name;
  }
}

TEST(RenderTopTest, FrameCarriesPhaseProgressAndStates) {
  const std::string text = render_top(sample_snapshot());
  EXPECT_NE(text.find("running"), std::string::npos);
  EXPECT_NE(text.find("attempt 2"), std::string::npos);
  EXPECT_NE(text.find("merged 1/4"), std::string::npos);
  EXPECT_NE(text.find("4242"), std::string::npos);  // real worker pid
  EXPECT_NE(text.find("killed by signal 9"), std::string::npos);
  EXPECT_NE(text.find("6/8"), std::string::npos);  // fwd progress
  // No ANSI escapes: cursor control belongs to the tool, not the renderer.
  EXPECT_EQ(text.find('\033'), std::string::npos);
}

TEST(WriteAtomicTest, WritesAndReplacesWithoutTornReads) {
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp";
  const std::string path = dir + "/slimpipe_test_write_atomic.json";
  ASSERT_TRUE(write_atomic(path, "first"));
  ASSERT_TRUE(write_atomic(path, "second"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "second");
  // The temp sibling never lingers.
  EXPECT_EQ(std::fopen((path + ".tmp").c_str(), "rb"), nullptr);
  std::remove(path.c_str());
  // Unwritable directory fails cleanly instead of crashing.
  EXPECT_FALSE(write_atomic("/nonexistent-dir/x.json", "x"));
}

// ---------------------------------------------------------------------------
// StageMetrics: the transport/clock fields survive the report JSON.

TEST(MetricsJsonTest, TransportAndClockFieldsRoundTrip) {
  RunMetrics metrics;
  metrics.substrate = "dist";
  metrics.scheme = "slim";
  metrics.makespan = 0.5;
  StageMetrics s;
  s.device = 1;
  s.frames_sent = 16;
  s.frames_recv = 15;
  s.bytes_recv = 73728.0;
  s.crc_rejects = 1;
  s.send_retries = 4;
  s.clock_offset_seconds = -0.00231;
  s.clock_uncertainty_seconds = 0.00011;
  s.clock_samples = 9;
  metrics.stages.push_back(s);

  const std::string text = run_metrics_to_json(metrics).dump();
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::parse(text, &parsed, &error)) << error;
  RunMetrics back;
  ASSERT_TRUE(run_metrics_from_json(parsed, &back));
  ASSERT_EQ(back.stages.size(), 1u);
  EXPECT_EQ(back.stages[0].frames_sent, 16);
  EXPECT_EQ(back.stages[0].frames_recv, 15);
  EXPECT_EQ(back.stages[0].bytes_recv, 73728.0);
  EXPECT_EQ(back.stages[0].crc_rejects, 1);
  EXPECT_EQ(back.stages[0].send_retries, 4);
  EXPECT_EQ(back.stages[0].clock_offset_seconds, -0.00231);
  EXPECT_EQ(back.stages[0].clock_uncertainty_seconds, 0.00011);
  EXPECT_EQ(back.stages[0].clock_samples, 9);
}

}  // namespace
}  // namespace slim::obs
