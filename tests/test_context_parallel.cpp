// Tests for numeric context parallelism over the KV cache (paper §5):
// ring-KV and commutated variants must agree with the gathered reference,
// and the commutated variant's communication must be independent of the
// cached prefix length while ring-KV's grows with it.

#include <gtest/gtest.h>

#include "src/numerics/context_parallel.hpp"
#include "src/util/rng.hpp"

namespace slim::num {
namespace {

constexpr float kScale = 0.3f;
constexpr std::int64_t kDim = 8;

struct CpSetup {
  std::vector<Tensor> queries;
  std::vector<std::int64_t> q_offsets;
  std::vector<CpRankCache> caches;
};

// Build a SlimPipe-like situation: `cached_slices` earlier slices plus the
// current one live in the cache, every slice split contiguously over c
// ranks; the current slice's queries are likewise split.
CpSetup make_setup(Rng& rng, int c, int cached_slices, std::int64_t slice_len) {
  CpSetup setup;
  const std::int64_t block = slice_len / c;
  const std::int64_t q_base =
      static_cast<std::int64_t>(cached_slices) * slice_len;
  for (int rank = 0; rank < c; ++rank) {
    setup.queries.push_back(Tensor::randn(block, kDim, rng, 1.0f));
    setup.q_offsets.push_back(q_base + rank * block);
    CpRankCache cache;
    for (int s = 0; s <= cached_slices; ++s) {
      KvChunk chunk;
      chunk.k = Tensor::randn(block, kDim, rng, 1.0f);
      chunk.v = Tensor::randn(block, kDim, rng, 1.0f);
      chunk.pos = static_cast<std::int64_t>(s) * slice_len + rank * block;
      cache.chunks.push_back(std::move(chunk));
    }
    setup.caches.push_back(std::move(cache));
  }
  return setup;
}

struct CpCase {
  int c;
  int cached_slices;
  std::int64_t slice_len;
};

class CpEquivalenceTest : public ::testing::TestWithParam<CpCase> {};

TEST_P(CpEquivalenceTest, RingKvMatchesReference) {
  const CpCase c = GetParam();
  Rng rng(300 + c.c * 13 + c.cached_slices);
  const CpSetup setup = make_setup(rng, c.c, c.cached_slices, c.slice_len);
  const auto ref =
      cp_reference(setup.queries, setup.q_offsets, setup.caches, kScale);
  const auto ring =
      cp_ring_kv(setup.queries, setup.q_offsets, setup.caches, kScale);
  for (std::size_t r = 0; r < ref.size(); ++r) {
    EXPECT_LT(ring.outputs[r].out.max_abs_diff(ref[r].out), 5e-6f);
  }
}

TEST_P(CpEquivalenceTest, CommutatedMatchesReference) {
  const CpCase c = GetParam();
  Rng rng(400 + c.c * 13 + c.cached_slices);
  const CpSetup setup = make_setup(rng, c.c, c.cached_slices, c.slice_len);
  const auto ref =
      cp_reference(setup.queries, setup.q_offsets, setup.caches, kScale);
  const auto comm =
      cp_commutated(setup.queries, setup.q_offsets, setup.caches, kScale);
  for (std::size_t r = 0; r < ref.size(); ++r) {
    EXPECT_LT(comm.outputs[r].out.max_abs_diff(ref[r].out), 5e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CpEquivalenceTest,
                         ::testing::Values(CpCase{1, 0, 8}, CpCase{2, 0, 8},
                                           CpCase{2, 3, 8}, CpCase{4, 1, 8},
                                           CpCase{4, 5, 16}, CpCase{8, 2, 16},
                                           CpCase{3, 4, 9}));

TEST(CpVolumeTest, CommutatedIndependentOfCacheLength) {
  Rng rng(77);
  const int c = 4;
  const auto short_cache = make_setup(rng, c, 0, 16);
  const auto long_cache = make_setup(rng, c, 7, 16);

  const auto comm_short = cp_commutated(short_cache.queries,
                                        short_cache.q_offsets,
                                        short_cache.caches, kScale);
  const auto comm_long = cp_commutated(long_cache.queries,
                                       long_cache.q_offsets,
                                       long_cache.caches, kScale);
  EXPECT_EQ(comm_short.bytes_communicated, comm_long.bytes_communicated);

  const auto ring_short = cp_ring_kv(short_cache.queries,
                                     short_cache.q_offsets,
                                     short_cache.caches, kScale);
  const auto ring_long = cp_ring_kv(long_cache.queries, long_cache.q_offsets,
                                    long_cache.caches, kScale);
  // Ring-KV re-communicates the whole cache: 8x the chunks -> 8x the bytes.
  EXPECT_EQ(ring_long.bytes_communicated, 8 * ring_short.bytes_communicated);
  // With a long cache the commutated variant wins decisively (§5's claim).
  EXPECT_LT(comm_long.bytes_communicated, ring_long.bytes_communicated);
}

TEST(CpVolumeTest, SingleRankCommunicatesNothing) {
  Rng rng(78);
  const auto setup = make_setup(rng, 1, 3, 8);
  EXPECT_EQ(cp_ring_kv(setup.queries, setup.q_offsets, setup.caches, kScale)
                .bytes_communicated,
            0);
  EXPECT_EQ(cp_commutated(setup.queries, setup.q_offsets, setup.caches, kScale)
                .bytes_communicated,
            0);
}

}  // namespace
}  // namespace slim::num
