#pragma once

// Deterministic fault injection plans (robustness north star).
//
// A FaultPlan is a seeded, declarative description of cluster misbehaviour:
// persistent or transient straggler slowdowns per device and op class, link
// bandwidth/latency degradation, device crashes with checkpoint-restart
// recovery, and — for the threaded mini-runtime — stage crashes, stage
// hangs and message delays. The same plan drives both execution substrates:
// the discrete-event simulator scales op durations and models recovery
// cost, and the threaded runtime injects the faults between messages. All
// randomness (jitter) derives from the plan's seed, so a (seed, plan) pair
// replays identically.
//
// Every observed fault surfaces as a structured FaultReport, never as a
// bare terminate: the report lists the injected events, the recovery cost
// and — for runtime deadlocks — the per-stage blocked-on table.

#include <cstdint>
#include <string>
#include <vector>

namespace slim::fault {

/// Which simulated ops a straggler applies to.
enum class OpFilter : std::uint8_t {
  Any,       // every op on the device (compute and communication)
  Forward,   // forward / recompute / vocabulary-forward compute
  Backward,  // backward halves / vocabulary-backward compute
  Comm,      // P2P sends, exchange traffic, collectives
};

const char* op_filter_name(OpFilter filter);

/// Multiplies the duration of matching ops. `from_op`/`to_op` select a
/// window of the device's op sequence (inclusive, -1 = open end), which
/// models transient slowdowns; the default window is persistent.
struct Straggler {
  int device = -1;  // -1: every device
  OpFilter ops = OpFilter::Any;
  double factor = 1.0;  // duration multiplier, >= 1
  double jitter = 0.0;  // uniform +-fraction of (factor-1), seeded
  std::int64_t from_op = 0;
  std::int64_t to_op = -1;  // inclusive; -1 = until the end
};

/// Degrades every message whose *sender* is `src` (-1: all links): the
/// transfer time is multiplied by `slowdown` and `extra_latency` seconds
/// are added per message.
struct LinkFault {
  int src = -1;
  double slowdown = 1.0;  // >= 1
  double extra_latency = 0.0;  // seconds
};

/// Simulator crash: the device fails when its `at_op`-th compute op
/// retires. Recovery is checkpoint-restart from the last iteration
/// boundary: all in-flight work since the iteration start is lost and
/// replayed after `restart_cost` seconds of respawn time.
struct Crash {
  int device = 0;
  std::int64_t at_op = 0;  // index into the device's compute-op sequence
  double restart_cost = 1.0;  // seconds
};

/// Threaded-runtime crash: the stage worker throws after processing
/// `after_messages` messages. With recovery enabled the runtime respawns
/// the stage from the parameter snapshot and replays unretired
/// microbatches.
struct StageCrash {
  int stage = 0;
  std::int64_t after_messages = 1;
};

/// Threaded-runtime hang: the stage worker stops making progress after
/// `after_messages` messages (it parks until shutdown). Peers starve and
/// the watchdog produces the deadlock report.
struct StageHang {
  int stage = 0;
  std::int64_t after_messages = 1;
};

/// Threaded-runtime straggler: the stage sleeps `seconds` after every
/// `every`-th message (-1: every stage).
struct MessageDelay {
  int stage = -1;
  std::int64_t every = 1;
  double seconds = 0.0;
};

/// Multi-process transport: every `every`-th data frame sent by `stage`
/// (-1: every stage) is dropped on the wire before delivery; the sender
/// detects the loss and retries up to `max_retries` times per frame. At
/// most `count` drops fire in total — a retry budget smaller than a
/// persistent drop rate turns this into a structured send failure.
struct SocketDrop {
  int stage = -1;
  std::int64_t every = 1;
  int count = 1;
  int max_retries = 3;
};

/// Multi-process transport: establishing the data transport adjacent to
/// `stage` fails `failures` times before succeeding; setup retries with
/// backoff and records a ConnectRetry event per failure.
struct SocketConnectFail {
  int stage = 0;
  int failures = 1;
};

/// Multi-process transport: every `every`-th data frame sent by `stage`
/// (-1: every stage) is delivered `seconds` late — the sender genuinely
/// sleeps before the write, so the added latency is measurable in the
/// receiver-side wall clock and the recorded obs trace.
struct SocketDelay {
  int stage = -1;
  std::int64_t every = 1;
  double seconds = 0.0;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<Straggler> stragglers;
  std::vector<LinkFault> links;
  std::vector<Crash> crashes;            // simulator substrate
  std::vector<StageCrash> stage_crashes; // threaded-runtime substrate
  std::vector<StageHang> stage_hangs;
  std::vector<MessageDelay> delays;
  std::vector<SocketDrop> socket_drops;  // multi-process transport (src/dist)
  std::vector<SocketConnectFail> socket_connect_fails;
  std::vector<SocketDelay> socket_delays;

  bool empty() const {
    return stragglers.empty() && links.empty() && crashes.empty() &&
           stage_crashes.empty() && stage_hangs.empty() && delays.empty() &&
           socket_drops.empty() && socket_connect_fails.empty() &&
           socket_delays.empty();
  }
};

// ---------------------------------------------------------------------------
// Validation (test_analysis style: one stable rule id per invariant).

struct PlanIssue {
  std::string rule_id;   // e.g. "fault-straggler-factor"
  std::string location;  // "straggler 2" / "crash 0"
  std::string message;
};

/// Semantic validation. `world_size` bounds device/stage indices when
/// positive; -1 skips the range checks (plan not yet bound to a cluster).
std::vector<PlanIssue> validate(const FaultPlan& plan, int world_size = -1);

bool has_rule(const std::vector<PlanIssue>& issues, const std::string& rule_id);
std::string render(const std::vector<PlanIssue>& issues);

// ---------------------------------------------------------------------------
// Text round-trip: one fault per line, "kind key=value ...". '#' comments
// and blank lines ignored. parse_plan throws (SLIM_CHECK) on structurally
// malformed input; semantic problems are left to validate().
//
//   seed 42
//   straggler device=1 ops=forward factor=1.5 jitter=0.1 from=0 to=-1
//   link src=0 slowdown=2.0 extra_latency=1e-5
//   crash device=2 at_op=37 restart_cost=2.5
//   stage_crash stage=1 after_messages=9
//   stage_hang stage=2 after_messages=4
//   delay stage=0 every=3 seconds=0.002
//   socket_drop stage=1 every=3 count=2 max_retries=5
//   socket_connect stage=1 failures=2
//   socket_delay stage=0 every=2 seconds=0.001

FaultPlan parse_plan(const std::string& text);
std::string to_text(const FaultPlan& plan);

// ---------------------------------------------------------------------------
// Structured fault report, shared by both substrates.

struct FaultEvent {
  enum class Kind : std::uint8_t {
    Straggler,
    LinkDegraded,
    Crash,
    Hang,
    Delay,
    Watchdog,   // starvation probe fired; blocked-on table attached
    Recovery,   // stage respawned, microbatches replayed
    Shutdown,   // worker aborted by channel poisoning
    SocketDrop,    // data frame dropped on the wire (sender retried)
    SocketDelay,   // data frame delivered late (injected socket latency)
    ConnectRetry,  // transient transport setup failure, retried
  };
  Kind kind = Kind::Straggler;
  int device = -1;          // device (simulator) or stage (runtime)
  double time = 0.0;        // simulated seconds; 0 when not applicable
  std::int64_t index = -1;  // op index / message count at the event
  std::string detail;
};

const char* event_kind_name(FaultEvent::Kind kind);

struct FaultReport {
  std::vector<FaultEvent> events;
  /// Extra seconds injected into op durations (simulator substrate).
  double injected_seconds = 0.0;
  /// Checkpoint-restart cost: lost in-flight work + restart time.
  double recovery_overhead = 0.0;
  /// Threaded runtime: microbatches replayed after a stage respawn.
  std::vector<int> replayed_microbatches;
  /// Watchdog deadlock report: per-stage blocked-on state table.
  std::string blocked_table;

  bool has_kind(FaultEvent::Kind kind) const;
  /// Aligned table of the events plus the summary lines.
  std::string render() const;
};

}  // namespace slim::fault
