#pragma once

// Causal attention: reference, partial (block-wise with online-softmax
// statistics) and streamed-over-KV-chunks variants, all single-head.
//
// The *partial* form is the mathematical heart of two SlimPipe mechanisms:
//  * slice-wise forward with a chunked KV cache (§4.1.2): a query slice
//    attends chunk by chunk and the partials merge exactly;
//  * attention context exchange (§4.2.2): a device computes attention
//    against part of the KV remotely and the partial output is merged back
//    "via the online softmax method" [Milakov & Gimelshein].
//
// merge(attn(Q, KV_a), attn(Q, KV_b)) == attn(Q, KV_a ∪ KV_b) exactly (up
// to floating point), which the tests assert.

#include <cstdint>
#include <vector>

#include "src/numerics/tensor.hpp"

namespace slim::num {

/// Softmax-normalized partial attention output with its online-softmax
/// statistics. `m` is the per-query running max of scores, `l` the running
/// normalizer. Queries with no visible keys have l == 0.
struct AttnPartial {
  Tensor out;             // (q_len, head_dim), already normalized by l
  std::vector<float> m;   // per query row
  std::vector<float> l;

  std::int64_t q_len() const { return out.rows(); }
};

/// Attention of q (global positions q_offset..q_offset+q_len-1) against
/// k/v (global positions k_offset..), causally masked: key j visible to
/// query i iff k_offset + j <= q_offset + i.
AttnPartial attn_partial(const Tensor& q, const Tensor& k, const Tensor& v,
                         std::int64_t q_offset, std::int64_t k_offset,
                         float scale);

/// Online-softmax merge of two partials over disjoint key sets.
AttnPartial attn_merge(const AttnPartial& a, const AttnPartial& b);

/// Reference causal attention (single block, k_offset = 0).
Tensor attn_reference(const Tensor& q, const Tensor& k, const Tensor& v,
                      std::int64_t q_offset, float scale);

/// Reference backward. dq/dk/dv are (re)initialized to the right shapes.
void attn_reference_bwd(const Tensor& q, const Tensor& k, const Tensor& v,
                        std::int64_t q_offset, float scale, const Tensor& dout,
                        Tensor& dq, Tensor& dk, Tensor& dv);

/// One KV chunk with its global start position.
struct KvChunk {
  Tensor k;
  Tensor v;
  std::int64_t pos = 0;  // global position of the chunk's first key
};

/// Streamed forward over chunks (flash-attention style, O(chunk) memory).
AttnPartial attn_streamed(const Tensor& q, const std::vector<KvChunk>& chunks,
                          std::int64_t q_offset, float scale);

/// Streamed backward: recomputes per-chunk probabilities from the final
/// (m, l) statistics; accumulates dk/dv into per-chunk gradient buffers
/// (which is what makes LIFO slice backward necessary: a chunk's gradient
/// is only complete once every later slice has contributed).
void attn_streamed_bwd(const Tensor& q, const std::vector<KvChunk>& chunks,
                       std::int64_t q_offset, float scale,
                       const AttnPartial& fwd, const Tensor& dout, Tensor& dq,
                       std::vector<Tensor>& dk_chunks,
                       std::vector<Tensor>& dv_chunks);

}  // namespace slim::num
