// Tests for the tensor substrate and the three matmul variants.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/numerics/tensor.hpp"
#include "src/util/rng.hpp"

namespace slim::num {
namespace {

TEST(TensorTest, ShapeAndAccess) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
}

TEST(TensorTest, SliceRows) {
  Tensor t(4, 2);
  for (int r = 0; r < 4; ++r) t.at(r, 0) = static_cast<float>(r);
  const Tensor s = t.slice_rows(1, 3);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_FLOAT_EQ(s.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(1, 0), 2.0f);
  EXPECT_THROW(t.slice_rows(3, 2), std::logic_error);
}

TEST(TensorTest, SliceCols) {
  Tensor t(2, 4);
  for (int c = 0; c < 4; ++c) t.at(1, c) = static_cast<float>(c);
  const Tensor s = t.slice_cols(2, 4);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_FLOAT_EQ(s.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(s.at(1, 1), 3.0f);
}

TEST(TensorTest, VcatRoundTrip) {
  Rng rng(1);
  const Tensor t = Tensor::randn(6, 3, rng);
  const Tensor joined =
      Tensor::vcat({t.slice_rows(0, 2), t.slice_rows(2, 5), t.slice_rows(5, 6)});
  EXPECT_TRUE(joined.allclose(t, 0.0f));
}

TEST(TensorTest, AssignRows) {
  Tensor t(4, 2);
  Tensor src(2, 2);
  src.fill(7.0f);
  t.assign_rows(1, src);
  EXPECT_FLOAT_EQ(t.at(1, 0), 7.0f);
  EXPECT_FLOAT_EQ(t.at(2, 1), 7.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(t.at(3, 0), 0.0f);
}

TEST(TensorTest, AddScaled) {
  Tensor a(1, 3), b(1, 3);
  a.fill(1.0f);
  b.fill(2.0f);
  a.add_scaled_(b, 0.5f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 2.0f);
}

TEST(TensorTest, Transpose) {
  Rng rng(2);
  const Tensor t = Tensor::randn(3, 5, rng);
  const Tensor tt = t.transposed();
  EXPECT_EQ(tt.rows(), 5);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 5; ++c) EXPECT_FLOAT_EQ(tt.at(c, r), t.at(r, c));
  }
}

TEST(TensorTest, Norms) {
  Tensor t(1, 2);
  t.at(0, 0) = 3.0f;
  t.at(0, 1) = 4.0f;
  EXPECT_FLOAT_EQ(t.l2norm(), 5.0f);
}

class MatmulTest : public ::testing::Test {
 protected:
  MatmulTest() : rng_(11) {}
  Rng rng_;

  static Tensor naive(const Tensor& a, const Tensor& b) {
    Tensor c(a.rows(), b.cols());
    for (std::int64_t i = 0; i < a.rows(); ++i) {
      for (std::int64_t j = 0; j < b.cols(); ++j) {
        double sum = 0.0;
        for (std::int64_t k = 0; k < a.cols(); ++k) {
          sum += static_cast<double>(a.at(i, k)) * b.at(k, j);
        }
        c.at(i, j) = static_cast<float>(sum);
      }
    }
    return c;
  }
};

TEST_F(MatmulTest, MatchesNaive) {
  const Tensor a = Tensor::randn(7, 5, rng_, 1.0f);
  const Tensor b = Tensor::randn(5, 9, rng_, 1.0f);
  EXPECT_LT(matmul(a, b).max_abs_diff(naive(a, b)), 1e-5f);
}

TEST_F(MatmulTest, NtMatchesNaive) {
  const Tensor a = Tensor::randn(4, 6, rng_, 1.0f);
  const Tensor b = Tensor::randn(8, 6, rng_, 1.0f);
  EXPECT_LT(matmul_nt(a, b).max_abs_diff(naive(a, b.transposed())), 1e-5f);
}

TEST_F(MatmulTest, TnMatchesNaive) {
  const Tensor a = Tensor::randn(6, 4, rng_, 1.0f);
  const Tensor b = Tensor::randn(6, 8, rng_, 1.0f);
  EXPECT_LT(matmul_tn(a, b).max_abs_diff(naive(a.transposed(), b)), 1e-5f);
}

TEST_F(MatmulTest, ShapeMismatchThrows) {
  const Tensor a(2, 3), b(4, 5);
  EXPECT_THROW(matmul(a, b), std::logic_error);
  EXPECT_THROW(matmul_nt(a, b), std::logic_error);
  EXPECT_THROW(matmul_tn(a, b), std::logic_error);
}

TEST(TensorTest, AssignCols) {
  Tensor t(3, 4);
  Tensor src(3, 2);
  src.fill(7.0f);
  t.assign_cols(1, src);
  for (std::int64_t r = 0; r < 3; ++r) {
    EXPECT_FLOAT_EQ(t.at(r, 0), 0.0f);
    EXPECT_FLOAT_EQ(t.at(r, 1), 7.0f);
    EXPECT_FLOAT_EQ(t.at(r, 2), 7.0f);
    EXPECT_FLOAT_EQ(t.at(r, 3), 0.0f);
  }
  EXPECT_THROW(t.assign_cols(3, src), std::logic_error);
}

TEST(TensorTest, SliceColsAssignColsRoundTrip) {
  Rng rng(3);
  const Tensor t = Tensor::randn(5, 7, rng);
  Tensor rebuilt(5, 7);
  rebuilt.assign_cols(0, t.slice_cols(0, 3));
  rebuilt.assign_cols(3, t.slice_cols(3, 7));
  EXPECT_TRUE(rebuilt.allclose(t, 0.0f));
}

// Regression: the matmul kernels once skipped zero left-hand operands as a
// "fast path", which silently dropped NaN/Inf from the right-hand side
// (0 * NaN must stay NaN per IEEE) and made kernel timing data-dependent.
// All three variants must propagate non-finite values through zero rows.
class MatmulNanTest : public MatmulTest {
 protected:
  static constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
  static constexpr float kInf = std::numeric_limits<float>::infinity();
};

TEST_F(MatmulNanTest, ZeroTimesNanPropagates) {
  Tensor a(2, 3);  // all zeros
  Tensor b(3, 2);
  b.at(1, 0) = kNaN;
  b.at(2, 1) = kInf;
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));
  EXPECT_TRUE(std::isnan(c.at(1, 0)));
  EXPECT_TRUE(std::isnan(c.at(0, 1)));  // 0 * inf = NaN
}

TEST_F(MatmulNanTest, NtZeroTimesNanPropagates) {
  Tensor a(2, 3);  // all zeros
  Tensor b(2, 3);  // rows are the transposed columns
  b.at(0, 1) = kNaN;
  b.at(1, 2) = kInf;
  const Tensor c = matmul_nt(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));
  EXPECT_TRUE(std::isnan(c.at(1, 0)));
  EXPECT_TRUE(std::isnan(c.at(0, 1)));
}

TEST_F(MatmulNanTest, TnZeroTimesNanPropagates) {
  Tensor a(3, 2);  // all zeros (k x m layout)
  Tensor b(3, 2);
  b.at(1, 0) = kNaN;
  b.at(2, 1) = kInf;
  const Tensor c = matmul_tn(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));
  EXPECT_TRUE(std::isnan(c.at(1, 0)));
  EXPECT_TRUE(std::isnan(c.at(0, 1)));
}

TEST_F(MatmulNanTest, NanInLeftOperandPropagates) {
  Tensor a(2, 2), b(2, 2);
  a.at(0, 0) = kNaN;
  const Tensor c = matmul(a, b);       // B all zero: NaN * 0 = NaN
  EXPECT_TRUE(std::isnan(c.at(0, 0)));
  EXPECT_TRUE(std::isnan(c.at(0, 1)));
  EXPECT_FALSE(std::isnan(c.at(1, 0)));
}

}  // namespace
}  // namespace slim::num
