// Tests for the attention substrate: the online-softmax merge identity
// (the mathematical core of both the chunked KV cache and context
// exchange), streamed forward/backward equivalence and finite-difference
// gradient checks.

#include <gtest/gtest.h>

#include <cmath>

#include "src/numerics/attention.hpp"
#include "src/util/rng.hpp"

namespace slim::num {
namespace {

constexpr float kScale = 0.35f;

struct SplitCase {
  std::int64_t q_len;
  std::int64_t kv_len;
  std::int64_t q_offset;
  std::int64_t split;
};

class MergeTest : public ::testing::TestWithParam<SplitCase> {};

// merge(attn(Q, KV[0:s]), attn(Q, KV[s:])) == attn(Q, KV) — exactly the
// identity that lets a device compute part of its attention remotely
// (context exchange) or chunk-by-chunk (KV cache).
TEST_P(MergeTest, MergeEqualsMonolithic) {
  const SplitCase c = GetParam();
  Rng rng(c.q_len * 131 + c.kv_len * 7 + c.split);
  const Tensor q = Tensor::randn(c.q_len, 16, rng, 1.0f);
  const Tensor k = Tensor::randn(c.kv_len, 16, rng, 1.0f);
  const Tensor v = Tensor::randn(c.kv_len, 16, rng, 1.0f);

  const AttnPartial full = attn_partial(q, k, v, c.q_offset, 0, kScale);
  const AttnPartial a = attn_partial(q, k.slice_rows(0, c.split),
                                     v.slice_rows(0, c.split), c.q_offset, 0,
                                     kScale);
  const AttnPartial b = attn_partial(q, k.slice_rows(c.split, c.kv_len),
                                     v.slice_rows(c.split, c.kv_len),
                                     c.q_offset, c.split, kScale);
  const AttnPartial merged = attn_merge(a, b);
  EXPECT_LT(merged.out.max_abs_diff(full.out), 2e-6f);
  for (std::int64_t i = 0; i < c.q_len; ++i) {
    const std::size_t si = static_cast<std::size_t>(i);
    if (full.l[si] == 0.0f) continue;
    // Global statistics agree too: l relative to the same max.
    const float lm = merged.l[si] * std::exp(merged.m[si] - full.m[si]);
    EXPECT_NEAR(lm / full.l[si], 1.0f, 1e-4f);
  }
}

TEST_P(MergeTest, MergeIsCommutative) {
  const SplitCase c = GetParam();
  Rng rng(c.q_len * 17 + c.kv_len + c.split * 3);
  const Tensor q = Tensor::randn(c.q_len, 8, rng, 1.0f);
  const Tensor k = Tensor::randn(c.kv_len, 8, rng, 1.0f);
  const Tensor v = Tensor::randn(c.kv_len, 8, rng, 1.0f);
  const AttnPartial a = attn_partial(q, k.slice_rows(0, c.split),
                                     v.slice_rows(0, c.split), c.q_offset, 0,
                                     kScale);
  const AttnPartial b = attn_partial(q, k.slice_rows(c.split, c.kv_len),
                                     v.slice_rows(c.split, c.kv_len),
                                     c.q_offset, c.split, kScale);
  const AttnPartial ab = attn_merge(a, b);
  const AttnPartial ba = attn_merge(b, a);
  EXPECT_LT(ab.out.max_abs_diff(ba.out), 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergeTest,
    ::testing::Values(SplitCase{4, 8, 4, 3}, SplitCase{8, 8, 0, 4},
                      SplitCase{1, 16, 15, 8}, SplitCase{6, 12, 6, 1},
                      SplitCase{6, 12, 6, 11}, SplitCase{5, 20, 15, 10},
                      SplitCase{3, 9, 8, 5}));

TEST(MergeTest, ThreeWayAssociative) {
  Rng rng(99);
  const Tensor q = Tensor::randn(5, 8, rng, 1.0f);
  const Tensor k = Tensor::randn(12, 8, rng, 1.0f);
  const Tensor v = Tensor::randn(12, 8, rng, 1.0f);
  auto part = [&](std::int64_t lo, std::int64_t hi) {
    return attn_partial(q, k.slice_rows(lo, hi), v.slice_rows(lo, hi), 11, lo,
                        kScale);
  };
  const AttnPartial left =
      attn_merge(attn_merge(part(0, 4), part(4, 8)), part(8, 12));
  const AttnPartial right =
      attn_merge(part(0, 4), attn_merge(part(4, 8), part(8, 12)));
  EXPECT_LT(left.out.max_abs_diff(right.out), 1e-6f);
}

TEST(CausalMaskTest, FullyMaskedRowsHaveZeroNormalizer) {
  Rng rng(5);
  const Tensor q = Tensor::randn(4, 8, rng, 1.0f);
  const Tensor k = Tensor::randn(4, 8, rng, 1.0f);
  const Tensor v = Tensor::randn(4, 8, rng, 1.0f);
  // Keys start at position 10 but queries sit at 0..3: nothing visible.
  const AttnPartial part = attn_partial(q, k, v, 0, 10, kScale);
  for (float l : part.l) EXPECT_EQ(l, 0.0f);
  EXPECT_FLOAT_EQ(part.out.l2norm(), 0.0f);
}

TEST(CausalMaskTest, DiagonalVisibility) {
  Rng rng(6);
  const Tensor q = Tensor::randn(3, 4, rng, 1.0f);
  const Tensor k = Tensor::randn(3, 4, rng, 1.0f);
  const Tensor v = Tensor::randn(3, 4, rng, 1.0f);
  // q_offset == k_offset: row i sees keys 0..i. Row 0 sees exactly one key
  // so its output is v[0].
  const AttnPartial part = attn_partial(q, k, v, 0, 0, kScale);
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(part.out.at(0, c), v.at(0, c), 1e-6f);
  }
}

struct StreamCase {
  std::int64_t q_len;
  std::int64_t chunks;
  std::int64_t chunk_len;
};

class StreamedTest : public ::testing::TestWithParam<StreamCase> {};

TEST_P(StreamedTest, ForwardMatchesReference) {
  const StreamCase c = GetParam();
  Rng rng(c.q_len + c.chunks * 13);
  const std::int64_t kv_len = c.chunks * c.chunk_len;
  const std::int64_t q_offset = kv_len - c.q_len;
  const Tensor q = Tensor::randn(c.q_len, 8, rng, 1.0f);
  const Tensor k = Tensor::randn(kv_len, 8, rng, 1.0f);
  const Tensor v = Tensor::randn(kv_len, 8, rng, 1.0f);
  std::vector<KvChunk> chunks;
  for (std::int64_t i = 0; i < c.chunks; ++i) {
    chunks.push_back({k.slice_rows(i * c.chunk_len, (i + 1) * c.chunk_len),
                      v.slice_rows(i * c.chunk_len, (i + 1) * c.chunk_len),
                      i * c.chunk_len});
  }
  const AttnPartial streamed = attn_streamed(q, chunks, q_offset, kScale);
  const Tensor ref = attn_reference(q, k, v, q_offset, kScale);
  EXPECT_LT(streamed.out.max_abs_diff(ref), 2e-6f);
}

TEST_P(StreamedTest, BackwardMatchesReference) {
  const StreamCase c = GetParam();
  Rng rng(c.q_len * 3 + c.chunks);
  const std::int64_t kv_len = c.chunks * c.chunk_len;
  const std::int64_t q_offset = kv_len - c.q_len;
  const Tensor q = Tensor::randn(c.q_len, 8, rng, 1.0f);
  const Tensor k = Tensor::randn(kv_len, 8, rng, 1.0f);
  const Tensor v = Tensor::randn(kv_len, 8, rng, 1.0f);
  const Tensor dout = Tensor::randn(c.q_len, 8, rng, 1.0f);

  Tensor dq_ref, dk_ref, dv_ref;
  attn_reference_bwd(q, k, v, q_offset, kScale, dout, dq_ref, dk_ref, dv_ref);

  std::vector<KvChunk> chunks;
  std::vector<Tensor> dk_chunks, dv_chunks;
  for (std::int64_t i = 0; i < c.chunks; ++i) {
    chunks.push_back({k.slice_rows(i * c.chunk_len, (i + 1) * c.chunk_len),
                      v.slice_rows(i * c.chunk_len, (i + 1) * c.chunk_len),
                      i * c.chunk_len});
    dk_chunks.emplace_back(c.chunk_len, 8);
    dv_chunks.emplace_back(c.chunk_len, 8);
  }
  const AttnPartial fwd = attn_streamed(q, chunks, q_offset, kScale);
  Tensor dq;
  attn_streamed_bwd(q, chunks, q_offset, kScale, fwd, dout, dq, dk_chunks,
                    dv_chunks);
  EXPECT_LT(dq.max_abs_diff(dq_ref), 5e-6f);
  EXPECT_LT(Tensor::vcat(dk_chunks).max_abs_diff(dk_ref), 5e-6f);
  EXPECT_LT(Tensor::vcat(dv_chunks).max_abs_diff(dv_ref), 5e-6f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StreamedTest,
                         ::testing::Values(StreamCase{4, 1, 4},
                                           StreamCase{4, 2, 4},
                                           StreamCase{4, 4, 4},
                                           StreamCase{2, 3, 5},
                                           StreamCase{8, 8, 2},
                                           StreamCase{16, 2, 8}));

TEST(AttentionGradCheckTest, FiniteDifferences) {
  Rng rng(31);
  const std::int64_t s = 3, kv = 5, d = 4;
  Tensor q = Tensor::randn(s, d, rng, 0.7f);
  Tensor k = Tensor::randn(kv, d, rng, 0.7f);
  Tensor v = Tensor::randn(kv, d, rng, 0.7f);
  const Tensor dout = Tensor::randn(s, d, rng, 1.0f);
  const std::int64_t q_offset = kv - s;

  Tensor dq, dk, dv;
  attn_reference_bwd(q, k, v, q_offset, kScale, dout, dq, dk, dv);

  auto loss = [&](const Tensor& qq, const Tensor& kk, const Tensor& vv) {
    const Tensor out = attn_reference(qq, kk, vv, q_offset, kScale);
    double sum = 0.0;
    for (std::int64_t i = 0; i < out.size(); ++i) {
      sum += static_cast<double>(out.data()[i]) * dout.data()[i];
    }
    return sum;
  };

  const float eps = 1e-3f;
  auto check = [&](Tensor& param, const Tensor& grad, const char* name) {
    for (std::int64_t i = 0; i < param.size(); i += 3) {
      const float orig = param.data()[i];
      param.data()[i] = orig + eps;
      const double hi = loss(q, k, v);
      param.data()[i] = orig - eps;
      const double lo = loss(q, k, v);
      param.data()[i] = orig;
      const double fd = (hi - lo) / (2.0 * eps);
      EXPECT_NEAR(fd, grad.data()[i], 5e-3)
          << name << " element " << i;
    }
  };
  check(q, dq, "dq");
  check(k, dk, "dk");
  check(v, dv, "dv");
}

}  // namespace
}  // namespace slim::num
