#pragma once

// Softmax cross-entropy: monolithic and vocabulary-sharded (paper §4.3.2).
//
// The sharded variant computes the loss from column shards of the logits
// without ever gathering them: each shard contributes its local (max,
// sum-exp, target-logit) statistics, the scalars are "synchronized" (here:
// combined), and both the loss and the per-shard gradients follow from the
// global statistics. Tests assert exact agreement with the monolithic path.

#include <cstdint>
#include <vector>

#include "src/numerics/tensor.hpp"

namespace slim::num {

struct CeResult {
  double loss = 0.0;    // mean over tokens
  Tensor dlogits;       // gradient of the mean loss
};

/// logits: (tokens x vocab); targets: one class id per token.
CeResult cross_entropy(const Tensor& logits,
                       const std::vector<std::int64_t>& targets);

struct ShardedCeResult {
  double loss = 0.0;
  std::vector<Tensor> dshards;  // same shapes as the input shards
};

/// `shards[k]` holds columns [offsets[k], offsets[k] + shards[k].cols()).
/// Offsets are implied by cumulative widths.
ShardedCeResult cross_entropy_sharded(
    const std::vector<Tensor>& shards,
    const std::vector<std::int64_t>& targets);

/// The per-shard statistics the sharded loss synchronizes — exposed so the
/// tests can check the communication payload is O(tokens), not O(vocab).
struct CeShardStats {
  std::vector<float> max_logit;   // per token
  std::vector<float> sum_exp;     // per token, relative to local max
  std::vector<float> target_logit;  // per token; -inf if target not local
};

CeShardStats ce_shard_stats(const Tensor& shard, std::int64_t col_offset,
                            const std::vector<std::int64_t>& targets);

}  // namespace slim::num
