#include "src/sched/schemes.hpp"

#include "src/util/logging.hpp"

namespace slim::sched {

std::vector<DeviceProgram> gpipe_programs(const PipelineSpec& spec) {
  SLIM_CHECK(spec.n == 1 && spec.v == 1, "GPipe is microbatch-granular");
  std::vector<DeviceProgram> programs(static_cast<std::size_t>(spec.p));
  for (int dev = 0; dev < spec.p; ++dev) {
    DeviceProgram& program = programs[static_cast<std::size_t>(dev)];
    for (int mb = 0; mb < spec.m; ++mb) {
      program.push_back({PassType::Forward, mb, 0, 0});
    }
    // All activations accumulate until the flush; backwards drain LIFO.
    for (int mb = spec.m - 1; mb >= 0; --mb) {
      program.push_back({PassType::Backward, mb, 0, 0});
    }
  }
  return programs;
}

ScheduleResult run_gpipe(PipelineSpec spec, bool want_timeline) {
  spec.v = 1;
  spec.n = 1;
  spec.layout = StageLayoutKind::Sequential;
  spec.retain_kv = false;
  spec.context_exchange = false;
  return run_pipeline(spec, gpipe_programs(spec), nullptr, "GPipe",
                      want_timeline);
}

std::vector<DeviceProgram> terapipe_programs(const PipelineSpec& spec) {
  SLIM_CHECK(spec.v == 1, "TeraPipe uses a single stage per device");
  std::vector<DeviceProgram> programs(static_cast<std::size_t>(spec.p));
  for (int dev = 0; dev < spec.p; ++dev) {
    DeviceProgram& program = programs[static_cast<std::size_t>(dev)];
    for (int mb = 0; mb < spec.m; ++mb) {
      for (int s = 0; s < spec.n; ++s) {
        program.push_back({PassType::Forward, mb, s, 0});
      }
    }
    // Backwards in strict reverse: causal KV gradients force LIFO slice
    // order within each microbatch.
    for (int mb = spec.m - 1; mb >= 0; --mb) {
      for (int s = spec.n - 1; s >= 0; --s) {
        program.push_back({PassType::Backward, mb, s, 0});
      }
    }
  }
  return programs;
}

ScheduleResult run_terapipe(PipelineSpec spec, bool want_timeline) {
  spec.v = 1;
  spec.layout = StageLayoutKind::Sequential;
  spec.retain_kv = true;  // token-level scheduling needs the KV of earlier slices
  spec.context_exchange = false;
  return run_pipeline(spec, terapipe_programs(spec), nullptr, "TeraPipe",
                      want_timeline);
}

}  // namespace slim::sched
