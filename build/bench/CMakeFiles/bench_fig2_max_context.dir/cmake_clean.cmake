file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_max_context.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig2_max_context.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig2_max_context.dir/bench_fig2_max_context.cpp.o"
  "CMakeFiles/bench_fig2_max_context.dir/bench_fig2_max_context.cpp.o.d"
  "bench_fig2_max_context"
  "bench_fig2_max_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_max_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
