#pragma once

// Byte-exact device memory accounting on the simulated timeline.
//
// Schedule builders attach MemDelta records to ops; after execution the
// tracker replays them in timestamp order and reports the peak footprint per
// device — the equivalent of torch.cuda.max_memory_allocated in the paper's
// Figure 10/14 measurements.

#include <cstdint>
#include <string>
#include <vector>

#include "src/memory/category.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/graph.hpp"

namespace slim::mem {

struct DeviceMemory {
  double peak = 0.0;      // peak total bytes
  double end = 0.0;       // bytes at the end of the iteration
  double peak_time = 0.0; // when the peak occurred
  /// Per-category footprint at the moment of the device's peak.
  std::vector<double> at_peak = std::vector<double>(kNumCategories, 0.0);
  /// Per-category individual maxima (may occur at different times).
  std::vector<double> category_peak = std::vector<double>(kNumCategories, 0.0);
};

struct MemoryReport {
  std::vector<DeviceMemory> devices;

  double max_peak() const;
  int argmax_device() const;
  std::string summary() const;
};

/// Replays the graph's memory deltas at the executed op times.
/// `num_devices` sizes the report (devices with no deltas report zeros).
MemoryReport replay_memory(const sim::OpGraph& graph,
                           const sim::ExecResult& result, int num_devices);

/// Adds a constant (time-independent) footprint such as model states to
/// every device: applied as a baseline before replay.
struct StaticFootprint {
  int device = 0;
  int category = 0;
  double bytes = 0.0;
};

MemoryReport replay_memory(const sim::OpGraph& graph,
                           const sim::ExecResult& result, int num_devices,
                           const std::vector<StaticFootprint>& baseline);

}  // namespace slim::mem
