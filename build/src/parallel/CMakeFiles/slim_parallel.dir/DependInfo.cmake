
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/config.cpp" "src/parallel/CMakeFiles/slim_parallel.dir/config.cpp.o" "gcc" "src/parallel/CMakeFiles/slim_parallel.dir/config.cpp.o.d"
  "/root/repo/src/parallel/pareto.cpp" "src/parallel/CMakeFiles/slim_parallel.dir/pareto.cpp.o" "gcc" "src/parallel/CMakeFiles/slim_parallel.dir/pareto.cpp.o.d"
  "/root/repo/src/parallel/search.cpp" "src/parallel/CMakeFiles/slim_parallel.dir/search.cpp.o" "gcc" "src/parallel/CMakeFiles/slim_parallel.dir/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/slim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/slim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/slim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/slim_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
