#include "src/sim/executor.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/util/logging.hpp"

namespace slim::sim {

double ExecResult::bubble_fraction(int device) const {
  if (makespan <= 0.0) return 0.0;
  SLIM_CHECK(device >= 0 &&
                 static_cast<std::size_t>(device) < compute_busy.size(),
             "device out of range in bubble_fraction");
  const double busy = compute_busy[static_cast<std::size_t>(device)];
  return std::max(0.0, 1.0 - busy / makespan);
}

double ExecResult::mean_bubble_fraction(int num_devices) const {
  if (num_devices <= 0) return 0.0;
  double total = 0.0;
  for (int d = 0; d < num_devices; ++d) total += bubble_fraction(d);
  return total / num_devices;
}

ExecResult execute(const OpGraph& graph) {
  const std::vector<Op>& ops = graph.ops();
  const std::size_t n = ops.size();

  // in-degree = explicit deps + (1 if the op has a predecessor on its
  // resource). Dependents collected for Kahn's algorithm.
  std::vector<std::int32_t> indeg(n, 0);
  std::vector<std::vector<OpId>> dependents(n);
  for (const Op& op : ops) {
    for (OpId dep : op.deps) {
      SLIM_CHECK(dep >= 0 && static_cast<std::size_t>(dep) < n,
                 "dependency op id out of range");
      dependents[static_cast<std::size_t>(dep)].push_back(op.id);
      ++indeg[static_cast<std::size_t>(op.id)];
    }
  }
  for (const auto& program : graph.programs()) {
    for (std::size_t i = 1; i < program.size(); ++i) {
      dependents[static_cast<std::size_t>(program[i - 1])].push_back(
          program[i]);
      ++indeg[static_cast<std::size_t>(program[i])];
    }
  }

  ExecResult result;
  result.timings.assign(n, OpTiming{});
  std::vector<double> resource_free(graph.num_resources(), 0.0);

  std::vector<OpId> ready;
  ready.reserve(n);
  for (const Op& op : ops) {
    if (indeg[static_cast<std::size_t>(op.id)] == 0) ready.push_back(op.id);
  }

  std::size_t processed = 0;
  // Kahn's algorithm. Start times are fully determined by deps + resource
  // availability, so processing order within the ready set does not matter.
  while (!ready.empty()) {
    const OpId id = ready.back();
    ready.pop_back();
    const Op& op = graph.op(id);

    double start = resource_free[static_cast<std::size_t>(op.resource)];
    for (OpId dep : op.deps) {
      start = std::max(start, result.timings[static_cast<std::size_t>(dep)].end);
    }
    // Program-order predecessor is covered by resource_free because ops on a
    // resource are processed in program order (the implicit edge guarantees
    // the predecessor was finalized first).
    OpTiming& t = result.timings[static_cast<std::size_t>(id)];
    t.start = start;
    t.end = start + op.duration;
    resource_free[static_cast<std::size_t>(op.resource)] = t.end;
    result.makespan = std::max(result.makespan, t.end);
    ++processed;

    for (OpId next : dependents[static_cast<std::size_t>(id)]) {
      if (--indeg[static_cast<std::size_t>(next)] == 0) ready.push_back(next);
    }
  }

  if (processed != n) {
    std::ostringstream msg;
    msg << "schedule deadlock: " << (n - processed)
        << " ops unreachable; first blocked ops:";
    int shown = 0;
    for (const Op& op : ops) {
      if (indeg[static_cast<std::size_t>(op.id)] > 0 && shown < 5) {
        msg << " [op " << op.id << " dev " << op.device << " mb "
            << op.microbatch << " slice " << op.slice << " stage " << op.stage
            << "]";
        ++shown;
      }
    }
    throw std::logic_error(msg.str());
  }

  // Per-device compute busy time.
  int max_device = -1;
  for (const Op& op : ops) max_device = std::max(max_device, op.device);
  result.compute_busy.assign(static_cast<std::size_t>(max_device + 1), 0.0);
  for (const Op& op : ops) {
    if (is_compute_class(op.cls)) {
      result.compute_busy[static_cast<std::size_t>(op.device)] += op.duration;
    }
  }
  return result;
}

}  // namespace slim::sim
