#pragma once

// Mixture-of-Experts feed-forward (the Mixtral architecture of Table 3):
// a softmax router picks the top-k experts per token; each expert is a
// SwiGLU FFN; outputs combine with the renormalized router weights.
//
// Two execution strategies are implemented:
//  * per-token: loop tokens, run their experts (the definition);
//  * grouped ("expert parallel" order): gather each expert's tokens and run
//    one batched pass per expert — the dispatch/combine layout EP uses.
// Tests assert both produce identical outputs and gradients, which is the
// balanced-router equivalence the paper's EP evaluation leans on (§6.1:
// "the expert router is set to complete balance for performance
// measurement").

#include <cstdint>
#include <vector>

#include "src/numerics/norm_act.hpp"
#include "src/numerics/tensor.hpp"
#include "src/util/rng.hpp"

namespace slim::num {

struct MoeDims {
  std::int64_t hidden = 0;
  std::int64_t ffn = 0;
  std::int64_t experts = 0;
  std::int64_t topk = 2;
};

struct ExpertWeights {
  Tensor w_gate, w_up, w_down;  // (h,f) (h,f) (f,h)
};

struct MoeWeights {
  Tensor router;  // (h, E)
  std::vector<ExpertWeights> experts;

  static MoeWeights random(const MoeDims& dims, Rng& rng);
};

struct MoeGrads {
  Tensor router;
  std::vector<ExpertWeights> experts;

  static MoeGrads zeros(const MoeDims& dims);
  float max_abs_diff(const MoeGrads& other) const;
};

/// Routing decision per token: top-k expert ids with renormalized softmax
/// weights.
struct Routing {
  std::vector<std::vector<std::int64_t>> expert;  // [token][k]
  std::vector<std::vector<float>> weight;         // [token][k]
};

/// Executes the router on `x` and returns the top-k decision.
Routing route(const MoeDims& dims, const MoeWeights& w, const Tensor& x);

/// Per-token forward (definition).
Tensor moe_forward(const MoeDims& dims, const MoeWeights& w, const Tensor& x);

/// Grouped-by-expert forward (EP dispatch/combine order).
Tensor moe_forward_grouped(const MoeDims& dims, const MoeWeights& w,
                           const Tensor& x);

/// Backward of the per-token forward; returns dx and accumulates grads.
/// Gradients flow through the expert FFNs and the router weights
/// (renormalized-softmax jacobian included).
Tensor moe_backward(const MoeDims& dims, const MoeWeights& w, const Tensor& x,
                    const Tensor& dout, MoeGrads& grads);

/// Per-expert token counts of a routing (load-balance diagnostics).
std::vector<std::int64_t> expert_load(const MoeDims& dims,
                                      const Routing& routing);

}  // namespace slim::num
