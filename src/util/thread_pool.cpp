#include "src/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <new>

#include "src/util/env.hpp"
#include "src/util/logging.hpp"

namespace slim::util {

namespace {

// Pool workers run nested parallel_for calls inline (a kernel invoked from
// inside another kernel's chunk must not deadlock waiting for the pool).
thread_local bool t_in_pool_worker = false;
// Innermost ScopedKernelThreads cap for this thread; 0 = uncapped.
thread_local int t_kernel_cap = 0;

int threads_from_env() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw == 0 ? 1 : static_cast<int>(hw);
  return static_cast<int>(env_int_or("SLIMPIPE_THREADS", fallback, 1));
}

}  // namespace

/// One parallel_for invocation. Chunks are claimed by atomic ticket; the
/// claim order is irrelevant to results (chunks are independent by the
/// determinism contract), only the done count and the error slot matter.
struct ThreadPool::Job {
  std::function<void(std::int64_t, std::int64_t)> fn;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t grain = 1;
  std::int64_t n_chunks = 0;
  int max_helpers = 0;  // pool workers allowed on top of the caller
  std::atomic<std::int64_t> next_chunk{0};
  std::atomic<std::int64_t> done{0};
  std::atomic<int> helpers{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::mutex error_mutex;
  std::exception_ptr error;
};

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(threads_from_env());
  return pool;
}

ThreadPool::ThreadPool(int threads) { set_threads(threads); }

ThreadPool::~ThreadPool() { set_threads(1); }

int ThreadPool::max_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return configured_;
}

void ThreadPool::set_threads(int threads) {
  threads = std::max(1, threads);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    SLIM_CHECK(jobs_.empty(), "set_threads while a parallel_for is in flight");
    if (threads == configured_ &&
        static_cast<int>(workers_.size()) == threads - 1) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  std::lock_guard<std::mutex> lock(mutex_);
  stop_ = false;
  configured_ = threads;
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::run_chunks(Job& job) {
  for (;;) {
    const std::int64_t chunk =
        job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.n_chunks) return;
    const std::int64_t lo = job.begin + chunk * job.grain;
    const std::int64_t hi = std::min(job.end, lo + job.grain);
    bool skip;
    {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      skip = static_cast<bool>(job.error);
    }
    if (!skip) {
      try {
        job.fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
      }
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.n_chunks) {
      std::lock_guard<std::mutex> lock(job.done_mutex);
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  t_in_pool_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    std::shared_ptr<Job> job;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      Job& candidate = **it;
      if (candidate.next_chunk.load(std::memory_order_relaxed) >=
          candidate.n_chunks) {
        it = jobs_.erase(it);
        continue;
      }
      if (candidate.helpers.load(std::memory_order_relaxed) <
          candidate.max_helpers) {
        job = *it;
        break;
      }
      ++it;
    }
    if (!job) {
      if (stop_) return;
      cv_.wait(lock);
      continue;
    }
    job->helpers.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    run_chunks(*job);
    job->helpers.fetch_sub(1, std::memory_order_relaxed);
    lock.lock();
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t n_chunks = chunk_count(begin, end, grain);

  int width;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    width = configured_;
  }
  if (t_kernel_cap > 0) width = std::min(width, t_kernel_cap);
  // Serial path: forced-serial pool, capped caller, a nested call from a
  // pool worker, or a single chunk. Chunks still run in ascending index
  // order with the same boundaries — bit-identical to the threaded path.
  if (width <= 1 || t_in_pool_worker || n_chunks == 1) {
    for (std::int64_t chunk = 0; chunk < n_chunks; ++chunk) {
      const std::int64_t lo = begin + chunk * grain;
      fn(lo, std::min(end, lo + grain));
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->n_chunks = n_chunks;
  job->max_helpers = static_cast<int>(
      std::min<std::int64_t>(width - 1, n_chunks - 1));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(job);
  }
  cv_.notify_all();
  run_chunks(*job);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done_cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->n_chunks;
    });
  }
  {
    // Retire the job eagerly so an idle pool holds no stale entries
    // (set_threads asserts the queue is empty).
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job), jobs_.end());
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(job->error_mutex);
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_locked(const std::function<void()>& fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  fn();
}

void ThreadPool::child_after_fork() {
  // The forking thread held mutex_ across the fork (run_locked), so no
  // worker was mid-bookkeeping in the snapshot — but the mutex itself was
  // inherited locked and the worker threads are gone. Joining (or even
  // destroying) their std::thread handles would terminate, so the handles
  // and any queued jobs are deliberately leaked; the primitives are
  // reconstructed in place and the pool is forced serial.
  auto* orphaned_workers = new std::vector<std::thread>();
  orphaned_workers->swap(workers_);
  auto* orphaned_jobs = new std::vector<std::shared_ptr<Job>>();
  orphaned_jobs->swap(jobs_);
  new (&mutex_) std::mutex();
  new (&cv_) std::condition_variable();
  configured_ = 1;
  stop_ = false;
}

ScopedKernelThreads::ScopedKernelThreads(int cap) : previous_(t_kernel_cap) {
  t_kernel_cap = cap > 0 ? cap : 0;
}

ScopedKernelThreads::~ScopedKernelThreads() { t_kernel_cap = previous_; }

int kernel_thread_cap() { return t_kernel_cap; }

}  // namespace slim::util
