// Tests for the extensions beyond the paper's core: SGD convergence of the
// sliced training step, the V-Min schedule, and adaptive context exchange.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/runner.hpp"
#include "src/core/slice.hpp"
#include "src/model/transformer.hpp"
#include "src/numerics/transformer_block.hpp"
#include "src/sched/schemes.hpp"

namespace slim {
namespace {

TEST(ConvergenceTest, SlicedSgdLearnsCopyTask) {
  Rng rng(91);
  const num::BlockDims dims{32, 4, 2, 48};
  const std::int64_t vocab = 24;
  num::TinyModel model(dims, vocab, 2, rng);

  // Copy task: predict the current token (identity mapping).
  Rng data_rng(92);
  std::vector<std::int64_t> tokens;
  for (int i = 0; i < 24; ++i) {
    tokens.push_back(static_cast<std::int64_t>(data_rng.next_below(24)));
  }
  const std::vector<std::int64_t> targets = tokens;

  double first = 0.0, last = 0.0;
  for (int step = 0; step < 25; ++step) {
    auto grads = model.zero_grads();
    const double loss = model.train_step(tokens, targets, 4, grads);
    if (step == 0) first = loss;
    last = loss;
    model.apply_sgd(grads, 0.5f);
  }
  EXPECT_LT(last, 0.5 * first)
      << "first " << first << " last " << last;
}

TEST(ConvergenceTest, SlicedAndMonolithicTrainIdentically) {
  // Train two identical models for several steps, one sliced + vocab
  // sharded, one monolithic: the trajectories must coincide.
  Rng rng_a(93), rng_b(93);
  const num::BlockDims dims{16, 2, 2, 24};
  num::TinyModel a(dims, 16, 2, rng_a);
  num::TinyModel b(dims, 16, 2, rng_b);
  Rng data_rng(94);
  std::vector<std::int64_t> tokens, targets;
  for (int i = 0; i < 16; ++i) {
    tokens.push_back(static_cast<std::int64_t>(data_rng.next_below(16)));
    targets.push_back(static_cast<std::int64_t>(data_rng.next_below(16)));
  }
  for (int step = 0; step < 5; ++step) {
    auto ga = a.zero_grads();
    auto gb = b.zero_grads();
    const double la = a.train_step(tokens, targets, 1, ga);
    const double lb = b.train_step(tokens, targets, 8, gb, 4);
    EXPECT_NEAR(la, lb, 1e-5) << "step " << step;
    a.apply_sgd(ga, 0.2f);
    b.apply_sgd(gb, 0.2f);
  }
}

sched::PipelineSpec vspec(int p, int m, std::int64_t seq) {
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.p = p;
  spec.m = m;
  spec.seq = seq;
  return spec;
}

TEST(VMinTest, MemoryOrderingAcrossVFamily) {
  auto spec = vspec(6, 12, 32 * 1024);
  spec.cfg.vocab = 4000;  // isolate activations
  const auto zbv = core::run_scheme(core::Scheme::ZBV, spec);
  const auto vhalf = core::run_scheme(core::Scheme::VHalf, spec);
  const auto vmin = core::run_scheme(core::Scheme::VMin, spec);
  EXPECT_LT(vhalf.first_device_memory, zbv.first_device_memory);
  EXPECT_LT(vmin.first_device_memory, vhalf.first_device_memory);
  // Tighter memory -> more idling.
  EXPECT_GE(vmin.bubble_fraction, vhalf.bubble_fraction - 0.02);
}

TEST(VMinTest, FractionFormula) {
  EXPECT_NEAR(core::vmin_activation_fraction(12), (8.0 + 2.0) / 24.0, 1e-9);
  EXPECT_LT(core::vmin_activation_fraction(8),
            core::vhalf_activation_fraction(8));
}

TEST(VMinTest, RunsAcrossScales) {
  for (int p : {2, 4, 8}) {
    auto spec = vspec(p, 2 * p, 16 * 1024);
    EXPECT_NO_THROW(core::run_scheme(core::Scheme::VMin, spec)) << p;
  }
}

TEST(AdaptiveExchangeTest, NeverMuchWorseThanBestStaticPolicy) {
  // The adaptive planner should track whichever static policy (always
  // exchange / never exchange) is better for the interconnect at hand.
  for (const bool cross_node : {false, true}) {
    auto spec = vspec(4, 2, 256 * 1024);
    spec.n = 16;
    spec.vocab_parallel = true;
    spec.gpu.memory_bytes = 1e15;  // memory is not the subject here
    // cross_node=true puts every PP hop on the NIC (no TP sharding either,
    // so payloads are large relative to compute).
    spec.shard = cross_node ? model::Shard{1, 1, 1, 1}
                            : model::Shard{8, 1, 1, 8};

    auto run = [&](bool exchange, bool adaptive) {
      auto s = spec;
      s.context_exchange = exchange;
      s.adaptive_exchange = adaptive;
      return core::run_scheme(core::Scheme::SlimPipe, s);
    };
    const auto always = run(true, false);
    const auto never = run(false, false);
    const auto adaptive = run(true, true);
    const double best =
        std::min(always.iteration_time, never.iteration_time);
    EXPECT_LE(adaptive.iteration_time, best * 1.05)
        << "cross_node=" << cross_node << " always=" << always.iteration_time
        << " never=" << never.iteration_time;
  }
}

TEST(AdaptiveExchangeTest, NoExchangeBytesWhenSkipping) {
  auto spec = vspec(4, 2, 64 * 1024);
  spec.n = 16;
  spec.vocab_parallel = true;
  spec.context_exchange = true;
  spec.adaptive_exchange = true;
  // Make compute trivially cheap relative to comm by using one layer worth
  // of work per pass on a weak link: shrink the model.
  spec.cfg.layers = 4;
  spec.shard = {1, 1, 1, 1};
  spec.gpu.memory_bytes = 1e15;
  const auto r = core::run_scheme(core::Scheme::SlimPipe, spec);
  const auto r_always = [&] {
    auto s = spec;
    s.adaptive_exchange = false;
    return core::run_scheme(core::Scheme::SlimPipe, s);
  }();
  EXPECT_LE(r.exchange_bytes_max_device, r_always.exchange_bytes_max_device);
}

}  // namespace
}  // namespace slim
