// Tests for the unified observability layer: JSON escaping/parsing, the
// Chrome trace exporter (structural validation), the metrics registry on
// both substrates, the bench report round-trip, and the cross-substrate
// consistency contract — the same schedule executed on the simulator and
// on the threaded runtime must agree on the discrete schedule-shape
// invariants (peak live slices, message counts) even though their clocks
// (cost model vs wall time) can never match.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/runner.hpp"
#include "src/model/transformer.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/report.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/pipeline_runtime.hpp"
#include "src/sched/schedule.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/graph.hpp"
#include "src/sim/topology.hpp"
#include "src/sim/trace.hpp"
#include "src/util/table.hpp"

namespace slim::obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonEscapeTest, EscapesEverythingJsonRequires) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
  // Non-ASCII bytes pass through untouched (JSON strings are UTF-8).
  EXPECT_EQ(json_escape("µs"), "µs");
  EXPECT_EQ(json_quote("x"), "\"x\"");
}

TEST(JsonNumberTest, NonFiniteClampsToZero) {
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "0");
}

TEST(JsonParseTest, RoundTripsBuilderOutput) {
  JsonValue doc = JsonValue::make_object();
  doc.set("name", JsonValue::make_string("tricky \"name\"\n"));
  doc.set("count", JsonValue::make_number(3.0));
  doc.set("ok", JsonValue::make_bool(true));
  JsonValue list = JsonValue::make_array();
  list.push_back(JsonValue::make_number(1.5));
  list.push_back(JsonValue::make_string("two"));
  doc.set("list", std::move(list));

  for (int indent : {0, 2}) {
    JsonValue back;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(doc.dump(indent), &back, &error)) << error;
    EXPECT_EQ(back.string_or("name", ""), "tricky \"name\"\n");
    EXPECT_DOUBLE_EQ(back.number_or("count", 0.0), 3.0);
    const JsonValue* ok = back.find("ok");
    ASSERT_NE(ok, nullptr);
    EXPECT_TRUE(ok->boolean());
    const JsonValue* parsed = back.find("list");
    ASSERT_NE(parsed, nullptr);
    ASSERT_EQ(parsed->array().size(), 2u);
    EXPECT_DOUBLE_EQ(parsed->array()[0].number(), 1.5);
    EXPECT_EQ(parsed->array()[1].str(), "two");
  }
}

TEST(JsonParseTest, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "\"unterminated",
                          "{\"a\":1} trailing", "nul"}) {
    JsonValue out;
    std::string error;
    EXPECT_FALSE(JsonValue::parse(bad, &out, &error)) << bad;
    EXPECT_FALSE(error.empty());
  }
}

// ------------------------------------------------------------ sim trace

// Two devices, one forward each, linked by a transfer; the minimal graph
// exercising device tracks, a channel track and one flow arrow.
sim::OpGraph two_device_graph() {
  sim::OpGraph g(sim::make_cluster(2));
  const sim::OpId f0 =
      g.add_compute(0, 1.0, sim::OpClass::Forward, {});
  g.set_tag(f0, 0, 0, 0);
  const sim::OpId send =
      g.add_transfer(0, 1, 1 << 20, sim::OpClass::Send, {f0});
  const sim::OpId f1 =
      g.add_compute(1, 2.0, sim::OpClass::Forward, {send});
  g.set_tag(f1, 0, 0, 1);
  return g;
}

TEST(ChromeTraceTest, StructurallyValidWithFlows) {
  const sim::OpGraph g = two_device_graph();
  const sim::ExecResult r = sim::execute(g);
  const Trace trace = trace_from_sim(g, r);
  EXPECT_FALSE(trace.spans.empty());
  EXPECT_FALSE(trace.flows.empty());

  const std::string json = chrome_trace_json(trace);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::parse(json, &doc, &error)) << error;
  ASSERT_TRUE(doc.is_array());

  std::map<double, int> flow_begins, flow_ends;
  for (const JsonValue& event : doc.array()) {
    const JsonValue* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    const std::string kind = ph->str();
    if (kind == "X") {
      EXPECT_NE(event.find("ts"), nullptr);
      EXPECT_NE(event.find("dur"), nullptr);
      EXPECT_NE(event.find("name"), nullptr);
    } else if (kind == "s" || kind == "f") {
      const JsonValue* id = event.find("id");
      ASSERT_NE(id, nullptr);
      (kind == "s" ? flow_begins : flow_ends)[id->number()]++;
    }
  }
  // Every flow id opens exactly once and closes at least once.
  EXPECT_FALSE(flow_begins.empty());
  for (const auto& [id, count] : flow_begins) EXPECT_EQ(count, 1) << id;
  for (const auto& [id, count] : flow_ends) {
    EXPECT_TRUE(flow_begins.count(id)) << id;
    EXPECT_GE(count, 1) << id;
  }
}

TEST(ChromeTraceTest, EscapesFaultDetailStrings) {
  Trace trace;
  std::vector<fault::FaultEvent> events(1);
  events[0].device = 0;
  events[0].time = 0.5;
  events[0].detail = "injected \"quote\"\nnewline";
  append_fault_events(trace, events);
  ASSERT_EQ(trace.instants.size(), 1u);

  const std::string json = chrome_trace_json(trace);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::parse(json, &doc, &error)) << error;
}

TEST(MetricsFromSimTest, BreakdownOnHandBuiltGraph) {
  const sim::OpGraph g = two_device_graph();
  const sim::ExecResult r = sim::execute(g);
  const RunMetrics m = metrics_from_sim(g, r, 2);
  ASSERT_EQ(m.stages.size(), 2u);
  EXPECT_DOUBLE_EQ(m.stages[0].compute_seconds, 1.0);
  EXPECT_DOUBLE_EQ(m.stages[1].compute_seconds, 2.0);
  EXPECT_EQ(m.stages[0].p2p_messages, 1);
  EXPECT_EQ(m.stages[1].p2p_messages, 0);
  EXPECT_DOUBLE_EQ(m.stages[0].p2p_bytes, 1 << 20);
  EXPECT_GT(m.makespan, 0.0);
  for (const StageMetrics& stage : m.stages) {
    EXPECT_GE(stage.bubble_fraction, 0.0);
    EXPECT_LE(stage.bubble_fraction, 1.0);
    EXPECT_NEAR(stage.compute_seconds + stage.idle_seconds, m.makespan, 1e-9);
  }

  // The trace-side computation agrees on the compute bucket.
  const RunMetrics t = metrics_from_trace(trace_from_sim(g, r), 2);
  ASSERT_EQ(t.stages.size(), 2u);
  EXPECT_DOUBLE_EQ(t.stages[0].compute_seconds, 1.0);
  EXPECT_DOUBLE_EQ(t.stages[1].compute_seconds, 2.0);
  EXPECT_DOUBLE_EQ(t.makespan, m.makespan);
}

TEST(MetricsJsonTest, RoundTrip) {
  RunMetrics m;
  m.substrate = "sim";
  m.scheme = "slimpipe";
  m.makespan = 1.25;
  StageMetrics s;
  s.device = 3;
  s.compute_seconds = 0.75;
  s.peak_live_slices = 4;
  s.p2p_messages = 7;
  m.stages.push_back(s);

  RunMetrics back;
  ASSERT_TRUE(run_metrics_from_json(run_metrics_to_json(m), &back));
  EXPECT_EQ(back.substrate, "sim");
  EXPECT_EQ(back.scheme, "slimpipe");
  EXPECT_DOUBLE_EQ(back.makespan, 1.25);
  ASSERT_EQ(back.stages.size(), 1u);
  EXPECT_EQ(back.stages[0].device, 3);
  EXPECT_DOUBLE_EQ(back.stages[0].compute_seconds, 0.75);
  EXPECT_EQ(back.stages[0].peak_live_slices, 4);
  EXPECT_EQ(back.stages[0].p2p_messages, 7);
}

// --------------------------------------------------------- ascii golden

TEST(AsciiTimelineTest, GoldenTwoDevicePipeline) {
  // Fixed 1F1B fragment: F(1s) on dev 0, F(1s) then B(1s) on dev 1, B(1s)
  // back on dev 0; transfers take zero width at this resolution.
  sim::OpGraph g(sim::make_cluster(2));
  const sim::OpId f0 = g.add_compute(0, 1.0, sim::OpClass::Forward, {});
  const sim::OpId f1 = g.add_compute(1, 1.0, sim::OpClass::Forward, {f0});
  const sim::OpId b1 = g.add_compute(1, 1.0, sim::OpClass::Backward, {f1});
  g.add_compute(0, 1.0, sim::OpClass::Backward, {b1});
  const sim::ExecResult r = sim::execute(g);

  sim::AsciiTraceOptions opts;
  opts.width = 8;
  opts.num_devices = 2;
  opts.show_legend = false;
  const std::string golden =
      "dev 0 |FFF....BBB|\n"
      "dev 1 |..FFFBBB..|\n";
  EXPECT_EQ(sim::ascii_timeline(g, r, opts), golden);
}

// -------------------------------------------------------------- reports

TEST(ReportTest, WriteLoadValidateRoundTrip) {
  BenchReport report;
  report.name = "unit";
  report.artifact = "unit artifact";
  report.setup = "setup with \"quotes\"";
  report.expectation = "shape";
  Table table({"col a", "col b"});
  table.add_row({"1.0", "x"});
  table.add_row({"2.0", "y"});
  report.add_series("numbers", table);
  RunRecord run;
  run.label = "base";
  run.iteration_time = 2.0;
  run.bubble_fraction = 0.25;
  run.mfu = 0.5;
  run.peak_memory = 1e9;
  run.metrics.substrate = "sim";
  run.metrics.stages.resize(2);
  report.runs.push_back(run);

  EXPECT_TRUE(validate_report(report_to_json(report)).empty());

  const std::string path = ::testing::TempDir() + "slim_obs_report.json";
  ASSERT_TRUE(write_report(report, path));
  BenchReport back;
  std::string error;
  ASSERT_TRUE(load_report(path, &back, &error)) << error;
  EXPECT_EQ(back.name, "unit");
  EXPECT_EQ(back.setup, "setup with \"quotes\"");
  ASSERT_EQ(back.series.size(), 1u);
  EXPECT_EQ(back.series[0].title, "numbers");
  ASSERT_EQ(back.series[0].rows.size(), 2u);
  EXPECT_EQ(back.series[0].rows[1][1], "y");
  ASSERT_EQ(back.runs.size(), 1u);
  EXPECT_DOUBLE_EQ(back.runs[0].iteration_time, 2.0);
  ASSERT_EQ(back.runs[0].metrics.stages.size(), 2u);
}

TEST(ReportTest, ValidateFlagsBrokenDocuments) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::parse(
      R"({"schema":"wrong","version":1,"name":"x","series":[
           {"title":"t","columns":["a","b"],"rows":[["only-one"]]}],
         "runs":[]})",
      &doc, &error))
      << error;
  const auto issues = validate_report(doc);
  EXPECT_GE(issues.size(), 2u);  // bad schema + row width mismatch
}

TEST(ReportTest, DiffShowsNumericDeltas) {
  BenchReport a, b;
  a.name = b.name = "unit";
  Table ta({"config", "MFU"});
  ta.add_row({"base", "50.0%"});
  Table tb({"config", "MFU"});
  tb.add_row({"base", "55.0%"});
  a.add_series("mfu", ta);
  b.add_series("mfu", tb);
  const std::string diff = render_diff(a, b);
  EXPECT_NE(diff.find("50.0% -> 55.0%"), std::string::npos) << diff;
  EXPECT_NE(diff.find("+10.0%"), std::string::npos) << diff;
}

// ---------------------------------------------------------- recorder

TEST(RecorderTest, ThreadSafeAcrossWriters) {
  Recorder rec;
  constexpr int kThreads = 4, kEvents = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kEvents; ++i) {
        const double now = rec.now();
        rec.span(t, "work", kCatCompute, now, now + 1e-6, i, 0, t);
        rec.instant(t, "mark", kCatCommit);
        const std::int64_t id = rec.begin_flow(t, "msg");
        rec.end_flow(id, (t + 1) % kThreads, rec.now());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const Trace trace = rec.snapshot();
  const std::size_t expected =
      static_cast<std::size_t>(kThreads) * kEvents;
  EXPECT_EQ(trace.spans.size(), expected);
  EXPECT_EQ(trace.instants.size(), expected);
  EXPECT_EQ(trace.flows.size(), 2 * expected);
  std::set<std::int64_t> ids;
  for (const TraceFlowPoint& point : trace.flows) {
    if (point.begin) {
      EXPECT_TRUE(ids.insert(point.id).second);
    }
  }
  EXPECT_EQ(ids.size(), expected);
}

// ------------------------------------------- sim vs runtime consistency

// Both substrates execute the same schedule shape: SlimPipe, p=2 stages,
// v=1, n=2 slices, m=2 microbatches, no vocab parallelism, no context
// exchange. The discrete schedule invariants — peak simultaneously-live
// slices per stage and cross-stage message counts — must agree exactly.
// Timing CANNOT agree (the simulator runs a cost model over H100-scale
// shapes; the runtime measures wall time of a toy model on test hardware),
// so for timing we only assert each substrate's internal consistency.
TEST(ConsistencyTest, SimAndRuntimeAgreeOnScheduleShape) {
  // Simulator side.
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.policy = model::CheckpointPolicy::None;
  spec.p = 2;
  spec.v = 1;
  spec.n = 2;
  spec.m = 2;
  spec.seq = 2 * 8192;
  spec.vocab_parallel = false;
  spec.context_exchange = false;
  const sched::ScheduleResult sim_result =
      core::run_scheme(core::Scheme::SlimPipe, spec);
  const RunMetrics& sim_metrics = sim_result.metrics;
  EXPECT_EQ(sim_metrics.substrate, "sim");
  ASSERT_EQ(sim_metrics.stages.size(), 2u);

  // Runtime side: same p/v/n/m on the miniature model, with tracing on.
  Rng rng(42);
  const num::BlockDims dims{16, 2, 2, 24};
  rt::ThreadedPipeline pipe(dims, /*vocab=*/16, /*layers_total=*/4,
                            /*stages=*/2, rng);
  Rng data_rng(43);
  std::vector<std::vector<std::int64_t>> tokens(2), targets(2);
  for (int mb = 0; mb < 2; ++mb) {
    for (int i = 0; i < 8; ++i) {
      tokens[mb].push_back(static_cast<std::int64_t>(data_rng.next_below(16)));
      targets[mb].push_back(static_cast<std::int64_t>(data_rng.next_below(16)));
    }
  }
  Recorder recorder;
  rt::RunOptions options;
  options.n_slices = 2;
  options.recorder = &recorder;
  const auto rt_result = pipe.run_iteration(tokens, targets, options);
  const RunMetrics& rt_metrics = rt_result.stats.metrics;
  EXPECT_EQ(rt_metrics.substrate, "runtime");
  ASSERT_EQ(rt_metrics.stages.size(), 2u);

  // Discrete schedule-shape invariants: exact agreement.
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(rt_metrics.stages[s].peak_live_slices,
              sim_metrics.stages[s].peak_live_slices)
        << "stage " << s;
    EXPECT_EQ(rt_metrics.stages[s].p2p_messages,
              sim_metrics.stages[s].p2p_messages)
        << "stage " << s;
    // Eq. 1: peak live slices never exceed n*v + 2(p-1-r).
    EXPECT_LE(rt_metrics.stages[s].peak_live_slices, 2 + 2 * (1 - s));
  }

  // Timing: internally consistent on both substrates.
  for (const RunMetrics* m : {&sim_metrics, &rt_metrics}) {
    EXPECT_GT(m->makespan, 0.0);
    for (const StageMetrics& stage : m->stages) {
      EXPECT_GE(stage.bubble_fraction, 0.0);
      EXPECT_LE(stage.bubble_fraction, 1.0);
      EXPECT_LE(stage.compute_seconds, m->makespan + 1e-9);
    }
  }

  // The runtime's recorded trace is itself a valid source of metrics and a
  // valid Chrome export with paired flow arrows.
  const Trace trace = recorder.take();
  EXPECT_FALSE(trace.spans.empty());
  EXPECT_FALSE(trace.flows.empty());
  const RunMetrics from_trace = metrics_from_trace(trace, 2);
  ASSERT_EQ(from_trace.stages.size(), 2u);
  EXPECT_GT(from_trace.stages[0].compute_seconds, 0.0);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::parse(chrome_trace_json(trace), &doc, &error))
      << error;
  std::set<std::int64_t> begins;
  std::set<std::int64_t> ends;
  for (const TraceFlowPoint& point : trace.flows) {
    (point.begin ? begins : ends).insert(point.id);
  }
  EXPECT_EQ(begins, ends);
}

}  // namespace
}  // namespace slim::obs
