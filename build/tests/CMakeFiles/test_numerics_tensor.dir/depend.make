# Empty dependencies file for test_numerics_tensor.
# This may be replaced when dependencies are built.
