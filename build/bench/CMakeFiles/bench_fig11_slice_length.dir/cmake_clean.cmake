file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_slice_length.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig11_slice_length.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig11_slice_length.dir/bench_fig11_slice_length.cpp.o"
  "CMakeFiles/bench_fig11_slice_length.dir/bench_fig11_slice_length.cpp.o.d"
  "bench_fig11_slice_length"
  "bench_fig11_slice_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_slice_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
