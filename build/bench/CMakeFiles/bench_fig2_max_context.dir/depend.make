# Empty dependencies file for bench_fig2_max_context.
# This may be replaced when dependencies are built.
