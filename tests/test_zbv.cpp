// Tests for the ZB-V / V-Half constructive schedules: program validity,
// memory caps and the split-backward behaviour.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/model/transformer.hpp"
#include "src/sched/builder.hpp"
#include "src/sched/schemes.hpp"

namespace slim::sched {
namespace {

PipelineSpec zb_spec(int p, int m, std::int64_t seq = 32 * 1024) {
  PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.policy = model::CheckpointPolicy::None;
  spec.p = p;
  spec.v = 2;
  spec.m = m;
  spec.n = 1;
  spec.seq = seq;
  spec.layout = StageLayoutKind::VShape;
  return spec;
}

struct ZbCase {
  int p;
  int m;
};

class ZbvProgramTest : public ::testing::TestWithParam<ZbCase> {};

TEST_P(ZbvProgramTest, EveryUnitScheduledExactlyOnce) {
  const ZbCase c = GetParam();
  if (40 % (c.p * 2) != 0) GTEST_SKIP() << "layers not divisible";
  const PipelineSpec spec = zb_spec(c.p, c.m);
  const auto programs = zbv_programs(spec, 2.0 * c.p);
  ASSERT_EQ(static_cast<int>(programs.size()), c.p);
  for (const DeviceProgram& program : programs) {
    std::map<std::pair<int, int>, int> f_count, bi_count, bw_count;
    for (const Pass& pass : program) {
      const auto key = std::make_pair(pass.microbatch, static_cast<int>(pass.chunk));
      switch (pass.type) {
        case PassType::Forward: ++f_count[key]; break;
        case PassType::BackwardInput: ++bi_count[key]; break;
        case PassType::BackwardWeight: ++bw_count[key]; break;
        default: FAIL() << "unexpected pass type";
      }
    }
    EXPECT_EQ(static_cast<int>(f_count.size()), 2 * c.m);
    EXPECT_EQ(static_cast<int>(bi_count.size()), 2 * c.m);
    EXPECT_EQ(static_cast<int>(bw_count.size()), 2 * c.m);
    for (const auto& [key, count] : f_count) EXPECT_EQ(count, 1);
    for (const auto& [key, count] : bi_count) EXPECT_EQ(count, 1);
    for (const auto& [key, count] : bw_count) EXPECT_EQ(count, 1);
  }
}

TEST_P(ZbvProgramTest, OrderConstraintsWithinDevice) {
  const ZbCase c = GetParam();
  if (40 % (c.p * 2) != 0) GTEST_SKIP() << "layers not divisible";
  const PipelineSpec spec = zb_spec(c.p, c.m);
  const auto programs = zbv_programs(spec, 2.0 * c.p);
  for (const DeviceProgram& program : programs) {
    std::set<std::pair<int, int>> forwarded, input_graded;
    for (const Pass& pass : program) {
      const auto key = std::make_pair(pass.microbatch, static_cast<int>(pass.chunk));
      switch (pass.type) {
        case PassType::Forward:
          forwarded.insert(key);
          break;
        case PassType::BackwardInput:
          EXPECT_TRUE(forwarded.count(key)) << "BI before F";
          input_graded.insert(key);
          break;
        case PassType::BackwardWeight:
          EXPECT_TRUE(input_graded.count(key)) << "W before BI";
          break;
        default:
          break;
      }
    }
  }
}

TEST_P(ZbvProgramTest, ExecutesWithoutDeadlock) {
  const ZbCase c = GetParam();
  if (40 % (c.p * 2) != 0) GTEST_SKIP() << "layers not divisible";
  PipelineSpec spec = zb_spec(c.p, c.m);
  EXPECT_NO_THROW(run_zbv(spec));
  EXPECT_NO_THROW(run_vhalf(spec));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZbvProgramTest,
                         ::testing::Values(ZbCase{1, 2}, ZbCase{2, 2},
                                           ZbCase{2, 8}, ZbCase{4, 4},
                                           ZbCase{4, 12}, ZbCase{5, 5},
                                           ZbCase{10, 10}));

TEST(ZbvMemoryTest, VHalfUsesLessThanZbv) {
  PipelineSpec spec = zb_spec(4, 8);
  const auto zbv = run_zbv(spec);
  const auto vhalf = run_vhalf(spec);
  EXPECT_LT(vhalf.first_device_memory, zbv.first_device_memory);
}

TEST(ZbvMemoryTest, ZbvMatchesOneF1BPeak) {
  // ZB-V is designed to keep 1F1B's peak activation memory.
  PipelineSpec spec = zb_spec(4, 8);
  const auto zbv = run_zbv(spec);
  PipelineSpec flat = spec;
  flat.v = 1;
  flat.layout = StageLayoutKind::Sequential;
  const auto f1b = run_onef1b(flat);
  EXPECT_NEAR(zbv.peak_memory, f1b.peak_memory, 0.25 * f1b.peak_memory);
}

TEST(ZbvBubbleTest, BeatsOneF1BAtShortContext) {
  // ZB-V's selling point: near-zero bubbles when T_f ~ T_b ~ T_w, which
  // holds best at short context where attention is small.
  PipelineSpec spec = zb_spec(4, 8, 8 * 1024);
  const auto zbv = run_zbv(spec);
  PipelineSpec flat = spec;
  flat.v = 1;
  flat.layout = StageLayoutKind::Sequential;
  const auto f1b = run_onef1b(flat);
  EXPECT_LT(zbv.bubble_fraction, f1b.bubble_fraction);
}

TEST(ZbvBubbleTest, ImbalanceGrowsWithContext) {
  // Long context makes attention dominate; T_w = 0 for attention, so the
  // W filler no longer matches the bubbles (paper §2.2): the relative
  // bubble advantage of ZB-V over 1F1B shrinks or reverses.
  PipelineSpec short_spec = zb_spec(4, 8, 8 * 1024);
  PipelineSpec long_spec = zb_spec(4, 8, 256 * 1024);
  const auto zb_short = run_zbv(short_spec);
  const auto zb_long = run_zbv(long_spec);
  EXPECT_GT(zb_long.bubble_fraction, zb_short.bubble_fraction - 0.02);
}

TEST(ZbvMemoryTest, OomAtLongContext) {
  // Figure 14: without working checkpointing ZB-V runs out of memory early.
  PipelineSpec spec = zb_spec(4, 4, 128 * 1024);
  const auto r = run_zbv(spec);
  EXPECT_TRUE(r.oom);
}

}  // namespace
}  // namespace slim::sched
