#pragma once

// Timeline rendering: ASCII pipeline diagrams (like the paper's Figures 4, 5,
// 7 and 9) and Chrome trace JSON export for offline inspection.

#include <string>

#include "src/sim/executor.hpp"
#include "src/sim/graph.hpp"

namespace slim::sim {

struct AsciiTraceOptions {
  int width = 120;          // characters across the full makespan
  int num_devices = 0;      // rows; 0 = infer from ops
  bool show_legend = true;
};

/// Renders one row per device; each compute op paints a run of characters:
///   F forward, B backward, I input-grad, W weight-grad, R recompute,
///   V vocab fwd, v vocab bwd, O optimizer, '.' idle (bubble).
std::string ascii_timeline(const OpGraph& graph, const ExecResult& result,
                           const AsciiTraceOptions& options = {});

// Chrome trace export moved to the unified observability layer: see
// obs::chrome_trace_json(graph, result) in src/obs/trace.hpp, which adds
// proper JSON string escaping, per-channel communication tracks, flow
// events linking sends to receives, and fault/recovery instant markers.

}  // namespace slim::sim
