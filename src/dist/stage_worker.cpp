#include "src/dist/stage_worker.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "src/dist/wire.hpp"
#include "src/numerics/cross_entropy.hpp"
#include "src/numerics/norm_act.hpp"
#include "src/obs/clock.hpp"
#include "src/obs/flight_recorder.hpp"
#include "src/obs/trace.hpp"
#include "src/util/logging.hpp"

namespace slim::dist {

const char* worker_state_name(WorkerState state) {
  switch (state) {
    case WorkerState::Running: return "running";
    case WorkerState::Waiting: return "waiting";
    case WorkerState::Done: return "done";
    case WorkerState::Starved: return "starved";
    case WorkerState::Hung: return "hung";
  }
  return "?";
}

namespace {

/// Structured worker failure: turned into an Error frame, never into an
/// uncaught exception (the process must reach _exit, not std::terminate).
struct WorkerError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Everything mutable the stage loop tracks, grouped so the Error/Done
/// serialization sees one coherent snapshot.
struct WorkerContext {
  const WorkerConfig* cfg = nullptr;
  obs::MonoClock::time_point start;  // the worker's clock epoch
  WireStatus status;
  double busy_seconds = 0.0;
  double comm_seconds = 0.0;
  double blocked_recv_seconds = 0.0;
  std::int64_t p2p_messages = 0;
  double p2p_bytes = 0.0;
  int peak_queue = 0;
  int peak_live = 0;
  std::vector<fault::FaultEvent> events;
  std::vector<WireSpan> spans;
  std::vector<WireInstant> instants;
  std::vector<WireFlow> flows;
  obs::FlightRecorder flight;
  bool prev_dead = false;
  bool next_dead = false;
  bool control_dead = false;
  obs::MonoClock::time_point last_beat;
  std::int64_t data_sends = 0;  // SocketDrop / SocketDelay rule counter
  std::vector<int> drops_fired;  // per SocketDrop rule

  double now() const {
    return std::chrono::duration<double>(obs::MonoClock::now() - start)
        .count();
  }

  void instant(const std::string& name, const std::string& category,
               const std::string& detail = "") {
    if (cfg->trace) instants.push_back({now(), name, category, detail});
  }

  void span(double span_start, const std::string& name,
            const std::string& category, int mb = -1, int slice = -1,
            int stage = -1) {
    if (cfg->trace) {
      spans.push_back({span_start, now(), name, category, mb, slice, stage});
    }
  }

  /// Ships a frame to the supervisor. A dead control socket means the
  /// supervisor is gone; the worker keeps running (it will be reaped) but
  /// stops talking.
  void send_control(const Frame& frame) {
    if (control_dead) return;
    if (!send_frame(cfg->control_fd, frame)) control_dead = true;
  }

  /// Appends one flight-recorder breadcrumb (no-op with flight disabled).
  void record(obs::FlightKind kind, std::int32_t mb, std::int32_t slice,
              std::int64_t value, std::string_view label) {
    if (cfg->flight) flight.record(kind, now(), mb, slice, value, label);
  }

  /// Ships the unflushed flight-recorder suffix as one Telemetry frame.
  /// Called on the heartbeat cadence and right before every Commit frame,
  /// so by the time the supervisor sees a commit it already holds the
  /// breadcrumbs leading up to it (same FIFO socket).
  void flush_flight() {
    if (!cfg->flight || control_dead) return;
    obs::FlightRecorder::Flush flush = flight.flush();
    if (flush.events.empty() && flush.dropped == 0) return;
    Frame frame;
    frame.kind = FrameKind::Telemetry;
    frame.stage = cfg->stage;
    Writer w;
    write_flight_flush(w, {flush.dropped, std::move(flush.events)});
    frame.payload = w.take();
    send_control(frame);
  }

  /// Answers any supervisor->worker control traffic waiting on the socket.
  /// Today that is only clock-alignment Pings: reply immediately so the
  /// round trip stays tight (theta's error bound is rtt/2).
  void drain_control() {
    if (control_dead || cfg->control_fd < 0) return;
    while (poll_readable(cfg->control_fd, 0)) {
      Frame frame;
      const IoStatus io = recv_frame(cfg->control_fd, &frame);
      if (io == IoStatus::Eof) {
        control_dead = true;
        return;
      }
      if (io != IoStatus::Ok || frame.kind != FrameKind::Ping) continue;
      Reader reader(frame.payload);
      const double t1 = reader.f64();
      const double t2 = now();
      Frame pong;
      pong.kind = FrameKind::Pong;
      pong.stage = cfg->stage;
      Writer w;
      w.f64(t1);
      w.f64(t2);
      w.f64(now());  // t3
      pong.payload = w.take();
      send_control(pong);
    }
  }

  void heartbeat_now() {
    status.flight_recorded = static_cast<std::int64_t>(flight.recorded());
    Frame beat;
    beat.kind = FrameKind::Heartbeat;
    beat.stage = cfg->stage;
    Writer w;
    write_status(w, status);
    beat.payload = w.take();
    send_control(beat);
    flush_flight();
    last_beat = obs::MonoClock::now();
  }

  void maybe_heartbeat() {
    drain_control();
    if (obs::MonoClock::now() - last_beat >= cfg->heartbeat_interval) {
      heartbeat_now();
    }
  }
};

/// A queued message. `counted` marks messages that already passed the
/// arrival hooks (fault triggers, message counter) — a deferred forward
/// re-admitted later must not count twice, matching the threaded runtime
/// where counting happens at channel receive.
struct Item {
  Frame frame;
  bool counted = false;
};

void park_forever(WorkerContext& ctx) {
  // Injected hang: the stage silently stops making progress. Heartbeats
  // stop with it — that is exactly the signal the supervisor's
  // missed-heartbeat deadline exists to catch. Parked until SIGKILLed.
  // The breadcrumb escapes in a last flush so the postmortem tail ends at
  // the hang, not just before it.
  ctx.status.state = static_cast<int>(WorkerState::Hung);
  ctx.record(obs::FlightKind::Fault, -1, -1, ctx.status.messages, "hang");
  ctx.flush_flight();
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

/// Applies SocketDrop / SocketDelay / LinkFault rules to one data-frame
/// send, then writes it. Returns false when the peer is gone.
bool send_data(WorkerContext& ctx, int fd, const Frame& frame) {
  const WorkerFaults& faults = ctx.cfg->faults;
  WireChannelStats& link =
      fd == ctx.cfg->next_fd ? ctx.status.next : ctx.status.prev;
  ++ctx.data_sends;
  const double send_start = ctx.now();

  // Drop with bounded retry: the affected transmit attempts are lost on
  // the wire; the sender backs off briefly and retransmits. A drop burst
  // longer than the retry budget is a structured send failure.
  for (std::size_t r = 0; r < faults.drops.size(); ++r) {
    const WorkerFaults::Drop& rule = faults.drops[r];
    if (rule.every < 1 || ctx.data_sends % rule.every != 0) continue;
    if (ctx.drops_fired[r] >= rule.count) continue;
    const int burst = std::min(rule.count - ctx.drops_fired[r],
                               rule.max_retries + 1);
    const bool exhausted = rule.count - ctx.drops_fired[r] > rule.max_retries;
    ctx.drops_fired[r] += burst;
    const std::string detail =
        "data frame " + std::to_string(ctx.data_sends) + " dropped " +
        std::to_string(burst) + "x" +
        (exhausted ? ", retry budget (" + std::to_string(rule.max_retries) +
                         ") exhausted"
                   : ", delivered on retry " + std::to_string(burst));
    ctx.events.push_back({fault::FaultEvent::Kind::SocketDrop, ctx.cfg->stage,
                          ctx.now(), ctx.data_sends, detail});
    ctx.instant("socket drop", obs::kCatFault, detail);
    link.retries += burst;
    ctx.record(obs::FlightKind::Fault, frame.mb, frame.slice, burst, "drop");
    if (exhausted) {
      throw WorkerError("stage " + std::to_string(ctx.cfg->stage) + ": " +
                        detail);
    }
    for (int attempt = 0; attempt < burst; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Injected latency: the sender genuinely sleeps before the write, so the
  // delay is measurable in the receiver's wall clock and the trace.
  double delay = 0.0;
  for (const WorkerFaults::Delay& rule : faults.socket_delays) {
    if (rule.every >= 1 && ctx.data_sends % rule.every == 0) {
      delay += rule.seconds;
    }
  }
  delay += faults.link_extra_latency;
  if (delay > 0.0) {
    if (ctx.status.injected_delay_seconds == 0.0) {
      const std::string detail = "socket sends delayed (injected latency)";
      ctx.events.push_back({fault::FaultEvent::Kind::SocketDelay,
                            ctx.cfg->stage, ctx.now(), ctx.data_sends,
                            detail});
      ctx.instant("socket delay", obs::kCatFault, detail);
    }
    ctx.status.injected_delay_seconds += delay;
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }

  ++ctx.p2p_messages;
  ctx.p2p_bytes += static_cast<double>(frame.payload.size());
  const bool backward = frame.kind == FrameKind::Backward;
  ctx.record(obs::FlightKind::Send, frame.mb, frame.slice,
             static_cast<std::int64_t>(frame.payload.size()),
             backward ? "bwd" : "fwd");
  if (ctx.cfg->trace) {
    // Send-side flow endpoint; the receiver derives the same id.
    ctx.flows.push_back({wire_flow_id(ctx.cfg->attempt, backward,
                                      ctx.cfg->stage, frame.mb, frame.slice),
                         ctx.now(), /*begin=*/1,
                         static_cast<std::uint8_t>(backward ? 1 : 0)});
  }
  const bool ok = send_frame(fd, frame);
  link.frames_out += 1;
  link.bytes_out += static_cast<std::int64_t>(frame.payload.size());
  ctx.comm_seconds += ctx.now() - send_start;
  ctx.span(send_start,
           std::string("send ") + frame_kind_name(frame.kind) + " mb" +
               std::to_string(frame.mb) + " s" + std::to_string(frame.slice),
           obs::kCatComm, frame.mb, frame.slice, ctx.cfg->stage);
  return ok;
}

int run_stage_worker_impl(const WorkerConfig& cfg, WorkerContext& ctx) {
  const rt::PipelineModel& model = *cfg.model;
  const int stage = cfg.stage;
  const int p = model.stages;
  SLIM_CHECK(model.chunks_per_stage == 1,
             "multi-process runtime supports chunks_per_stage == 1 only");
  const int n_slices = cfg.n_slices;
  const int mk = static_cast<int>(cfg.mbs.size());
  const int m_total = static_cast<int>(cfg.tokens->size());
  const bool is_last = stage == p - 1;
  SLIM_CHECK(static_cast<int>(cfg.layouts.size()) == m_total,
             "worker needs one slice layout per microbatch");
  auto pos_of = [&cfg](int mb, int slice) {
    return cfg.layouts[static_cast<std::size_t>(mb)].begin(slice);
  };
  auto len_of = [&cfg](int mb, int slice) {
    return cfg.layouts[static_cast<std::size_t>(mb)].len(slice);
  };
  // Slice (mb, s) contributes len / (seq_mb * m) of the iteration loss.
  // Must stay the identical float expression the threaded runtime uses —
  // the backend-equivalence tests compare gradients bit for bit.
  auto slice_weight_of = [&cfg, m_total](int mb, int slice) {
    const core::SliceLayout& layout =
        cfg.layouts[static_cast<std::size_t>(mb)];
    return static_cast<float>(layout.len(slice)) /
           (static_cast<float>(layout.seq()) * static_cast<float>(m_total));
  };

  std::vector<int> rank_of(static_cast<std::size_t>(m_total), -1);
  for (int r = 0; r < mk; ++r) {
    rank_of[static_cast<std::size_t>(cfg.mbs[static_cast<std::size_t>(r)])] =
        r;
  }

  // The worker's parameter snapshot: layers built from the fork-inherited
  // weights, arena-tracked so the supervisor can reconcile measured peaks.
  num::ArenaStats arena_stats;
  std::vector<num::Layer> layers;
  const auto [clo, chi] = model.stage_layers[static_cast<std::size_t>(stage)];
  for (int i = clo; i < chi; ++i) {
    layers.emplace_back(model.dims,
                        model.layer_weights[static_cast<std::size_t>(i)]);
    if (cfg.measure_memory) layers.back().set_arena_stats(&arena_stats);
  }

  // Local staging slots, one per attempt microbatch; shipped to the
  // supervisor in a Commit frame at retirement (at-most-once: the frame is
  // the commit point, partial slots never leave the process).
  std::vector<rt::StageCommit> staged;
  for (int r = 0; r < mk; ++r) {
    staged.push_back(rt::make_stage_commit(model, stage, false));
  }

  auto slice_targets_of = [&](int mb, int slice) {
    const std::int64_t pos = pos_of(mb, slice);
    const auto& t = (*cfg.targets)[static_cast<std::size_t>(mb)];
    return std::vector<std::int64_t>(t.begin() + pos,
                                     t.begin() + pos + len_of(mb, slice));
  };

  std::vector<num::Tensor> head_grad(
      is_last ? static_cast<std::size_t>(mk * n_slices) : 0);
  auto idx = [&](int mb, int slice) {
    return static_cast<std::size_t>(
        rank_of[static_cast<std::size_t>(mb)] * n_slices + slice);
  };

  std::deque<Item> inbox;
  std::deque<Item> deferred;
  if (stage == 0) {
    // Stage 0 feeds itself: every forward slice in slice-stream order.
    for (const int mb : cfg.mbs) {
      for (int s = 0; s < n_slices; ++s) {
        Frame ticket;
        ticket.kind = FrameKind::Forward;
        ticket.stage = 0;
        ticket.mb = mb;
        ticket.slice = s;
        inbox.push_back({std::move(ticket), false});
      }
    }
  }

  // Drains whatever the neighbor sockets have ready right now into the
  // local inbox (keeps senders unblocked — AF_UNIX buffers are finite).
  auto drain_sockets = [&]() {
    for (int which = 0; which < 2; ++which) {
      const int fd = which == 0 ? cfg.prev_fd : cfg.next_fd;
      bool& dead = which == 0 ? ctx.prev_dead : ctx.next_dead;
      WireChannelStats& link =
          which == 0 ? ctx.status.prev : ctx.status.next;
      if (fd < 0 || dead) continue;
      while (poll_readable(fd, 0)) {
        Frame frame;
        const IoStatus io = recv_frame(fd, &frame);
        if (io == IoStatus::Ok) {
          link.frames_in += 1;
          link.bytes_in += static_cast<std::int64_t>(frame.payload.size());
          const bool backward = frame.kind == FrameKind::Backward;
          ctx.record(obs::FlightKind::Recv, frame.mb, frame.slice,
                     static_cast<std::int64_t>(frame.payload.size()),
                     backward ? "bwd" : "fwd");
          if (cfg.trace) {
            // Receive-side flow endpoint: same id the sender derived.
            const int src = backward ? stage + 1 : stage - 1;
            ctx.flows.push_back(
                {wire_flow_id(cfg.attempt, backward, src, frame.mb,
                              frame.slice),
                 ctx.now(), /*begin=*/0,
                 static_cast<std::uint8_t>(backward ? 1 : 0)});
          }
          inbox.push_back({std::move(frame), false});
          continue;
        }
        // Eof: the neighbor exited (cleanly or was killed between frames).
        // Torn/Corrupt: it died mid-frame — the partial message is
        // discarded, its microbatch simply stays unretired here. Either
        // way this worker keeps finishing what it can locally; the
        // supervisor owns the verdict.
        dead = true;
        if (io != IoStatus::Eof) {
          link.crc_rejects += 1;
          const std::string detail =
              std::string("neighbor link ") + io_status_name(io) +
              " (peer died mid-frame); tail discarded";
          ctx.instant("link lost", obs::kCatFault, detail);
          ctx.record(obs::FlightKind::Fault, frame.mb, frame.slice, 0,
                     io_status_name(io));
        }
        break;
      }
    }
  };

  const int want_f = mk * n_slices;
  const int want_b = mk * n_slices;
  int done_f = 0, done_b = 0;
  int live = 0;
  int mb_min = 0;
  std::vector<int> b_done(static_cast<std::size_t>(mk), 0);
  std::int64_t messages = 0;
  // SlimPipe's warm-up window (Eq. 1), v = 1 on this backend.
  const int live_cap = n_slices + 2 * (p - 1 - stage);

  auto publish = [&] {
    ctx.status.messages = messages;
    ctx.status.done_f = done_f;
    ctx.status.done_b = done_b;
    ctx.status.live = live;
    ctx.status.queue = static_cast<int>(inbox.size());
    ctx.status.deferred = static_cast<int>(deferred.size());
    ctx.peak_queue = std::max(ctx.peak_queue, static_cast<int>(inbox.size()));
  };

  ctx.heartbeat_now();  // Hello already announced the transport; first beat

  while (done_f < want_f || done_b < want_b) {
    // Oldest unretired microbatch: its forwards are always admitted, so
    // the live-window throttle can never deadlock.
    while (mb_min < mk &&
           b_done[static_cast<std::size_t>(mb_min)] == n_slices) {
      ++mb_min;
    }
    const int admitted_mb =
        mb_min < mk ? cfg.mbs[static_cast<std::size_t>(mb_min)] : -1;

    Frame msg;
    bool have = false;
    if (!deferred.empty() &&
        (live < live_cap || deferred.front().frame.mb == admitted_mb)) {
      msg = std::move(deferred.front().frame);
      deferred.pop_front();
      have = true;
    }
    auto wait_start = obs::MonoClock::now();
    bool waiting = false;
    while (!have) {
      drain_sockets();
      if (inbox.empty()) {
        // Nothing local and nothing on the wire: block (in heartbeat-sized
        // slices so the supervisor keeps hearing from us) until traffic
        // arrives or the starvation watchdog fires.
        if (!waiting) {
          waiting = true;
          wait_start = obs::MonoClock::now();
          ctx.status.state = static_cast<int>(WorkerState::Waiting);
        }
        ctx.maybe_heartbeat();
        const auto waited = obs::MonoClock::now() - wait_start;
        if (waited >= cfg.starvation_timeout) {
          ctx.status.state = static_cast<int>(WorkerState::Starved);
          const std::string detail =
              "starved: f=" + std::to_string(done_f) + "/" +
              std::to_string(want_f) + " b=" + std::to_string(done_b) + "/" +
              std::to_string(want_b) + " live=" + std::to_string(live) +
              " cap=" + std::to_string(live_cap);
          ctx.instant("watchdog", obs::kCatFault, detail);
          ctx.events.push_back({fault::FaultEvent::Kind::Watchdog, stage,
                                ctx.now(), messages, detail});
          throw WorkerError("pipeline stage " + std::to_string(stage) +
                            " starved for " +
                            std::to_string(cfg.starvation_timeout.count()) +
                            " ms (" + detail + ")");
        }
        const double recv_start = ctx.now();
        const auto block_start = obs::MonoClock::now();
        std::vector<int> fds = {ctx.prev_dead ? -1 : cfg.prev_fd,
                                ctx.next_dead ? -1 : cfg.next_fd};
        const int slice_ms = static_cast<int>(std::min<std::int64_t>(
            cfg.heartbeat_interval.count(),
            std::max<std::int64_t>(1, cfg.starvation_timeout.count())));
        poll_readable_many(fds, slice_ms);
        ctx.blocked_recv_seconds +=
            std::chrono::duration<double>(obs::MonoClock::now() -
                                          block_start)
                .count();
        ctx.span(recv_start, "recv", obs::kCatComm);
        continue;
      }
      ctx.status.state = static_cast<int>(WorkerState::Running);
      Item item = std::move(inbox.front());
      inbox.pop_front();
      if (!item.counted) {
        ++messages;
        ctx.status.last_mb = item.frame.mb;
        item.counted = true;
        // Runtime fault hooks fire on arrival, like the threaded backend.
        if (cfg.faults.hang_after > 0 && messages == cfg.faults.hang_after) {
          park_forever(ctx);
        }
        if (cfg.faults.crash_after > 0 &&
            messages == cfg.faults.crash_after) {
          // A real crash: the process dies instantly, mid-protocol. No
          // frame, no cleanup — detection is the supervisor's problem. The
          // breadcrumb below never escapes (that's the point: only what was
          // already flushed survives into the postmortem tail).
          ctx.record(obs::FlightKind::Fault, item.frame.mb, item.frame.slice,
                     messages, "crash");
          ::raise(SIGKILL);
        }
        if (cfg.faults.delay_every > 0 &&
            messages % cfg.faults.delay_every == 0 &&
            cfg.faults.delay_seconds > 0.0) {
          if (ctx.events.empty() ||
              ctx.events.back().kind != fault::FaultEvent::Kind::Delay) {
            const std::string detail =
                "sleeping " + std::to_string(cfg.faults.delay_seconds) +
                " s every " + std::to_string(cfg.faults.delay_every) +
                " messages";
            ctx.events.push_back({fault::FaultEvent::Kind::Delay, stage,
                                  ctx.now(), messages, detail});
            ctx.instant("delay", obs::kCatFault, detail);
          }
          std::this_thread::sleep_for(
              std::chrono::duration<double>(cfg.faults.delay_seconds));
        }
        // Eq. 1's warm-up window: park forwards of younger microbatches
        // while the window is full.
        if (item.frame.kind == FrameKind::Forward &&
            item.frame.mb != admitted_mb && live >= live_cap) {
          deferred.push_back(std::move(item));
          publish();
          continue;
        }
      }
      msg = std::move(item.frame);
      have = true;
    }

    const double span_start = ctx.now();
    const auto busy_start = obs::MonoClock::now();
    const int rank = rank_of[static_cast<std::size_t>(msg.mb)];
    SLIM_CHECK(rank >= 0, "message for a microbatch outside the attempt");
    rt::StageCommit& mb_staged = staged[static_cast<std::size_t>(rank)];
    const bool is_fwd_msg = msg.kind == FrameKind::Forward;
    ctx.record(obs::FlightKind::SpanBegin, msg.mb, msg.slice, 0,
               is_fwd_msg ? "fwd" : "bwd");

    switch (msg.kind) {
      case FrameKind::Forward: {
        ++done_f;
        ++live;
        ctx.peak_live = std::max(ctx.peak_live, live);
        const std::int64_t pos = pos_of(msg.mb, msg.slice);
        const std::int64_t slice_len = len_of(msg.mb, msg.slice);
        num::Tensor x;
        if (stage == 0) {
          x = num::Tensor(slice_len, model.dims.hidden);
          const auto& ids = (*cfg.tokens)[static_cast<std::size_t>(msg.mb)];
          for (std::int64_t r = 0; r < slice_len; ++r) {
            const std::int64_t id = ids[static_cast<std::size_t>(pos + r)];
            for (std::int64_t c = 0; c < model.dims.hidden; ++c) {
              x.at(r, c) = model.embedding.at(id, c);
            }
          }
        } else {
          Reader reader(msg.payload);
          x = reader.tensor();
        }
        for (num::Layer& layer : layers) {
          x = layer.forward_slice(x, pos, msg.mb);
        }
        if (!is_last) {
          Frame out;
          out.kind = FrameKind::Forward;
          out.stage = stage + 1;
          out.mb = msg.mb;
          out.slice = msg.slice;
          Writer writer;
          writer.tensor(x);
          out.payload = writer.take();
          if (!ctx.next_dead && !send_data(ctx, cfg.next_fd, out)) {
            ctx.next_dead = true;
          }
          break;
        }
        const float slice_weight = slice_weight_of(msg.mb, msg.slice);
        const num::Tensor hidden = num::rmsnorm(x, model.final_norm);
        const num::Tensor logits = num::matmul_nt(hidden, model.embedding);
        num::CeResult ce =
            num::cross_entropy(logits, slice_targets_of(msg.mb, msg.slice));
        mb_staged.loss +=
            ce.loss * slice_weight * static_cast<double>(m_total);
        for (std::int64_t i = 0; i < ce.dlogits.size(); ++i) {
          ce.dlogits.data()[i] *= slice_weight;
        }
        mb_staged.head_shard.add_(num::matmul_tn(ce.dlogits, hidden));
        const num::Tensor dhidden = num::matmul(ce.dlogits, model.embedding);
        head_grad[idx(msg.mb, msg.slice)] = num::rmsnorm_bwd(
            x, model.final_norm, dhidden, mb_staged.final_norm);
        if (msg.slice == n_slices - 1) {
          Frame cont;
          cont.kind = FrameKind::Backward;
          cont.stage = stage;
          cont.mb = msg.mb;
          cont.slice = msg.slice;
          inbox.push_front({std::move(cont), false});
        }
        break;
      }
      case FrameKind::Backward: {
        ++done_b;
        --live;
        ++b_done[static_cast<std::size_t>(rank)];
        num::Tensor dx;
        if (is_last) {
          dx = std::move(head_grad[idx(msg.mb, msg.slice)]);
        } else {
          Reader reader(msg.payload);
          dx = reader.tensor();
        }
        for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
          const std::size_t local = static_cast<std::size_t>(
              layers.rend() - it - 1);
          dx = it->backward_slice(dx, mb_staged.layers[local], msg.mb);
        }
        if (stage > 0) {
          Frame out;
          out.kind = FrameKind::Backward;
          out.stage = stage - 1;
          out.mb = msg.mb;
          out.slice = msg.slice;
          Writer writer;
          writer.tensor(dx);
          out.payload = writer.take();
          if (!ctx.prev_dead && !send_data(ctx, cfg.prev_fd, out)) {
            ctx.prev_dead = true;
          }
        } else {
          const auto& ids = (*cfg.tokens)[static_cast<std::size_t>(msg.mb)];
          const std::int64_t pos = pos_of(msg.mb, msg.slice);
          const std::int64_t slice_len = len_of(msg.mb, msg.slice);
          for (std::int64_t r = 0; r < slice_len; ++r) {
            const std::int64_t id = ids[static_cast<std::size_t>(pos + r)];
            for (std::int64_t c = 0; c < model.dims.hidden; ++c) {
              mb_staged.embed_in.at(id, c) += dx.at(r, c);
            }
          }
        }
        if (b_done[static_cast<std::size_t>(rank)] == n_slices) {
          // Microbatch retired on this stage: the staged gradients are
          // final. The Commit frame IS the commit point — sent exactly
          // once, and a SIGKILL before or during the send leaves the
          // supervisor's slot incomplete (replayed), never half-applied.
          mb_staged.complete = true;
          ++ctx.status.committed;
          ctx.record(obs::FlightKind::Commit, msg.mb, -1,
                     ctx.status.committed, "commit");
          // Flush BEFORE the Commit frame: the control socket is FIFO, so
          // whoever sees the commit already holds the breadcrumbs that led
          // to it — the postmortem tail of a worker killed at mid-commit is
          // deterministic, not heartbeat-cadence lottery.
          ctx.flush_flight();
          Frame commit;
          commit.kind = FrameKind::Commit;
          commit.stage = stage;
          commit.mb = msg.mb;
          Writer writer;
          write_commit(writer, mb_staged);
          commit.payload = writer.take();
          ctx.send_control(commit);
          ctx.instant("commit mb" + std::to_string(msg.mb), obs::kCatCommit);
        }
        if (is_last && msg.slice > 0) {
          Frame cont;
          cont.kind = FrameKind::Backward;
          cont.stage = stage;
          cont.mb = msg.mb;
          cont.slice = msg.slice - 1;
          inbox.push_front({std::move(cont), false});
        }
        break;
      }
      default:
        throw WorkerError("stage " + std::to_string(stage) +
                          ": unexpected data frame kind " +
                          std::string(frame_kind_name(msg.kind)));
    }

    ctx.busy_seconds +=
        std::chrono::duration<double>(obs::MonoClock::now() - busy_start)
            .count();
    ctx.record(obs::FlightKind::SpanEnd, msg.mb, msg.slice, 0,
               is_fwd_msg ? "fwd" : "bwd");
    ctx.span(span_start,
             std::string(msg.kind == FrameKind::Forward ? "fwd" : "bwd") +
                 " mb" + std::to_string(msg.mb) + " s" +
                 std::to_string(msg.slice) + " st" + std::to_string(stage),
             obs::kCatCompute, msg.mb, msg.slice, stage);
    publish();
    ctx.maybe_heartbeat();
  }

  for (const num::Layer& layer : layers) {
    SLIM_CHECK(layer.live_slices() == 0 && layer.cache_chunks() == 0,
               "stage leaked slices/chunks");
  }

  // All work retired: final status + metrics + trace in one Done frame.
  ctx.status.state = static_cast<int>(WorkerState::Done);
  publish();
  WireStageDone done;
  done.status = ctx.status;
  done.busy_seconds = ctx.busy_seconds;
  done.comm_seconds = ctx.comm_seconds;
  done.blocked_recv_seconds = ctx.blocked_recv_seconds;
  done.p2p_messages = ctx.p2p_messages;
  done.p2p_bytes = ctx.p2p_bytes;
  done.peak_queue = ctx.peak_queue;
  done.peak_live = ctx.peak_live;
  if (cfg.measure_memory) {
    for (int c = 0; c < mem::kNumCategories; ++c) {
      done.arena_peak_bytes.push_back(arena_stats.peak_bytes(c));
    }
    done.arena_peak_total = arena_stats.total_peak_bytes();
  }
  done.events = ctx.events;
  done.spans = ctx.spans;
  done.instants = ctx.instants;
  done.flows = ctx.flows;
  ctx.record(obs::FlightKind::Mark, -1, -1, ctx.status.committed, "done");
  ctx.flush_flight();
  Frame frame;
  frame.kind = FrameKind::Done;
  frame.stage = stage;
  Writer writer;
  write_stage_done(writer, done);
  frame.payload = writer.take();
  ctx.send_control(frame);
  return 0;
}

}  // namespace

int run_stage_worker(const WorkerConfig& config) {
  WorkerContext ctx;
  ctx.cfg = &config;
  ctx.start = obs::MonoClock::now();
  ctx.last_beat = ctx.start;
  ctx.flight = obs::FlightRecorder(
      static_cast<std::size_t>(std::max(1, config.flight_capacity)));
  ctx.drops_fired.assign(config.faults.drops.size(), 0);
  try {
    Frame hello;
    hello.kind = FrameKind::Hello;
    hello.stage = config.stage;
    ctx.send_control(hello);
    ctx.record(obs::FlightKind::Mark, -1, -1, config.attempt, "start");
    return run_stage_worker_impl(config, ctx);
  } catch (const std::exception& error) {
    // Structured failure: everything the supervisor needs for the
    // postmortem — final status, message, fault events — in one Error
    // frame, then exit(2). Never an uncaught throw (this process must not
    // run the parent's terminate handler or atexit chain).
    ctx.record(obs::FlightKind::Fault, -1, -1, ctx.status.messages,
               "error");
    ctx.flush_flight();
    Frame frame;
    frame.kind = FrameKind::Error;
    frame.stage = config.stage;
    Writer writer;
    write_status(writer, ctx.status);
    writer.str(error.what());
    writer.i32(static_cast<std::int32_t>(ctx.events.size()));
    for (const fault::FaultEvent& event : ctx.events) {
      write_event(writer, event);
    }
    frame.payload = writer.take();
    ctx.send_control(frame);
    return 2;
  } catch (...) {
    return 2;
  }
}

}  // namespace slim::dist
