// Figure 2: maximum context length supported by each pipeline scheme when
// training Llama 7B with 8-way TP and 8-way PP (64 GPUs, one sequence per
// iteration). SlimPipe's inverse-in-p activation memory pushes the limit
// far beyond the classic schemes.

#include "bench_common.hpp"

using namespace slim;

namespace {

constexpr std::int64_t kGranularity = 16 * 1024;
constexpr std::int64_t kLimit = 4096 * 1024;

std::int64_t max_ctx(core::Scheme scheme) {
  return parallel::max_supported_context(scheme, model::llama7b(),
                                         model::hopper80(), 8, 8,
                                         kGranularity, kLimit);
}

}  // namespace

static void BM_Figure2MaxContext(benchmark::State& state) {
  const auto scheme = static_cast<core::Scheme>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_ctx(scheme));
  }
}
BENCHMARK(BM_Figure2MaxContext)
    ->Arg(static_cast<int>(core::Scheme::OneF1B))
    ->Arg(static_cast<int>(core::Scheme::SlimPipe))
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("fig2_max_context");
  slimbench::print_banner(
      "Figure 2 — maximum supported context length per PP scheme",
      "Llama 7B, t=8, p=8 (64 GPUs), 1 sequence/iteration, best checkpoint "
      "policy per scheme, no offloading",
      "GPipe/TeraPipe lowest, 1F1B moderate, interleaved/V-shaped similar, "
      "SlimPipe several times larger");

  Table table({"scheme", "max context", "vs 1F1B"});
  const std::int64_t baseline = max_ctx(core::Scheme::OneF1B);
  for (const auto scheme : core::all_schemes()) {
    const std::int64_t ctx = max_ctx(scheme);
    table.add_row({core::scheme_name(scheme), format_context(ctx),
                   baseline > 0 ? fmt(static_cast<double>(ctx) /
                                          static_cast<double>(baseline),
                                      2) + "x"
                                : "-"});
  }
  slimbench::print_table("max trainable context length", table);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
